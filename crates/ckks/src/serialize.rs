//! Versioned, integrity-checked binary serialization for ciphertext state.
//!
//! CraterLake's unbounded-computation story implies jobs that outlive a
//! process: checkpoints on disk, key material shipped between machines,
//! results archived for later pipelines. This module defines the hand-rolled
//! wire format those paths share — no external codec crates, every byte
//! little-endian and covered by an integrity check:
//!
//! - a 16-byte header: magic `CLFH`, format version, an object tag, and a
//!   64-bit **params fingerprint** binding the blob to the producing
//!   context's `(N, moduli chain, scale, special limbs)`
//!   ([`CkksContext::params_fingerprint`]);
//! - object metadata guarded by an FNV-1a checksum over its bytes;
//! - residue-polynomial payloads with a **per-limb checksum**, mirroring
//!   BASALISC's per-residue conformance checking in hardware.
//!
//! Load paths are fallible: structural damage reports
//! [`FheError::Serialization`], payload corruption reports
//! [`FheError::ChecksumMismatch`] naming the failing section, and a blob
//! from a different parameter set reports [`FheError::ParamsMismatch`].
//! Single-byte corruption anywhere in a blob is rejected (property-tested
//! in `tests/properties.rs`).
//!
//! Keyswitch hints are stored *seeded*: only the `k0` halves travel on the
//! wire, and the pseudo-random `k1` halves are regenerated from the seed at
//! load time — the serialization analogue of the KSHGen unit (Sec. 5.2),
//! halving hint blobs.

use cl_rns::{Basis, RnsPoly};

use crate::ciphertext::Ciphertext;
use crate::context::CkksContext;
use crate::error::{FheError, FheResult};
use crate::keys::{CompactKeySwitchKey, KeySwitchKey};
use crate::keyswitch::{self, KeySwitchKind};

/// File magic: the first four bytes of every blob.
pub const MAGIC: [u8; 4] = *b"CLFH";

/// Current wire-format version. Bump on any layout change; loaders reject
/// versions they do not understand instead of misparsing.
///
/// v2: residue-limb payload checksums switched from byte-wise FNV-1a to
/// the word-wise variant ([`fnv1a_words_chain`]) — 8 bytes per step
/// instead of 1, which takes the checksum off the checkpoint hot path
/// while still rejecting any single-byte corruption.
pub const FORMAT_VERSION: u16 = 2;

/// Discriminates what a blob contains, so a ciphertext cannot be loaded as
/// a key (or vice versa) even when the sizes happen to line up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ObjectTag {
    /// A bare residue polynomial.
    RnsPoly = 1,
    /// A ciphertext (two polynomials plus level/scale/noise metadata).
    Ciphertext = 2,
    /// A keyswitch hint, stored seeded (only the `k0` halves).
    KeySwitchKey = 3,
    /// A bootstrapping key bundle (relin + conjugation + rotation hints).
    BootstrapKeys = 4,
    /// A pipeline-executor checkpoint (cl-runtime).
    Checkpoint = 5,
    /// A declared pipeline program (cl-runtime).
    Program = 6,
    /// A write-ahead job journal (cl-server).
    Journal = 7,
}

impl ObjectTag {
    /// Maps a wire byte back to its tag, or `None` for unknown bytes.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(ObjectTag::RnsPoly),
            2 => Some(ObjectTag::Ciphertext),
            3 => Some(ObjectTag::KeySwitchKey),
            4 => Some(ObjectTag::BootstrapKeys),
            5 => Some(ObjectTag::Checkpoint),
            6 => Some(ObjectTag::Program),
            7 => Some(ObjectTag::Journal),
            _ => None,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over a byte slice — the integrity checksum used throughout the
/// wire format (same construction as the keyswitch-hint digest).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_chain(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a accumulation from a prior state, for checksums over
/// logically concatenated regions.
pub fn fnv1a_chain(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Word-wise FNV-1a continuation: absorbs one little-endian `u64` per
/// step instead of one byte. ~8x fewer serial multiply steps than
/// [`fnv1a_chain`] over the same data, so it is the checksum for the
/// megabyte-scale residue-limb payloads (format v2); any single flipped
/// byte still changes the absorbed word and therefore the digest.
/// Byte-wise FNV-1a remains in use for the small metadata regions.
pub fn fnv1a_words_chain(mut h: u64, words: &[u64]) -> u64 {
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fast digest over an arbitrary byte slice: word-wise FNV-1a over the
/// 8-byte-aligned prefix, byte-wise over the tail. NOT equal to
/// [`fnv1a`] over the same bytes — use it for internal content digests
/// (job bindings, cache keys), never where the wire format specifies the
/// byte-wise checksum.
pub fn fnv1a_fast(bytes: &[u8]) -> u64 {
    let (words, tail) = bytes.as_chunks::<8>();
    let mut h = FNV_OFFSET;
    for c in words {
        h ^= u64::from_le_bytes(*c);
        h = h.wrapping_mul(FNV_PRIME);
    }
    fnv1a_chain(h, tail)
}

// ---------------------------------------------------------------------
// Little-endian write helpers
// ---------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a slice of `u64` words, little-endian, in one bulk copy on
/// little-endian hosts (a per-word loop elsewhere). The limb payloads
/// this serves are the bulk of every ciphertext/checkpoint blob, so this
/// runs at memcpy speed instead of one `Vec` push per word.
pub fn put_u64_slice(out: &mut Vec<u8>, words: &[u64]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `u64` has no padding, every byte pattern is a valid
        // `u8`, and on a little-endian host the in-memory bytes of the
        // slice are exactly the wire encoding.
        let bytes: &[u8] = unsafe {
            std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), std::mem::size_of_val(words))
        };
        out.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Appends an `f64` as its IEEE-754 bit pattern (little-endian).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Writes the 16-byte blob header: magic, version, tag, reserved byte,
/// params fingerprint.
pub fn write_header(out: &mut Vec<u8>, tag: ObjectTag, fingerprint: u64) {
    out.extend_from_slice(&MAGIC);
    put_u16(out, FORMAT_VERSION);
    put_u8(out, tag as u8);
    put_u8(out, 0); // reserved
    put_u64(out, fingerprint);
}

/// Inspects an untrusted blob's header without parsing the payload:
/// returns `(tag, fingerprint)` after validating magic, format version,
/// and the reserved byte. This is the cheap admission-path pre-check a
/// serving front-end runs before accepting a blob into a queue — it
/// classifies the object and lets the caller match the fingerprint
/// against the submitting tenant's parameters, while full structural and
/// checksum validation stays deferred to the real load.
///
/// # Errors
///
/// [`FheError::Serialization`] for a blob too short to hold a header, bad
/// magic, an unsupported version, an unknown object tag, or a nonzero
/// reserved byte.
pub fn peek_header(op: &'static str, bytes: &[u8]) -> FheResult<(ObjectTag, u64)> {
    let mut r = Reader::new(op, bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(r.err(format!("bad magic {magic:02x?}, expected {MAGIC:02x?}")));
    }
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(r.err(format!(
            "unsupported format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let tag_byte = r.u8()?;
    let tag = ObjectTag::from_u8(tag_byte)
        .ok_or_else(|| r.err(format!("unknown object tag {tag_byte}")))?;
    let reserved = r.u8()?;
    if reserved != 0 {
        return Err(r.err(format!("reserved header byte is {reserved}, must be 0")));
    }
    let fp = r.u64()?;
    Ok((tag, fp))
}

// ---------------------------------------------------------------------
// Fallible reader
// ---------------------------------------------------------------------

/// A bounds-checked cursor over a blob. Every accessor fails with
/// [`FheError::Serialization`] (naming the loading operation) instead of
/// panicking on truncated input.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    op: &'static str,
}

impl<'a> Reader<'a> {
    /// Starts reading `buf` on behalf of operation `op` (used in error
    /// messages).
    pub fn new(op: &'static str, buf: &'a [u8]) -> Self {
        Self { buf, pos: 0, op }
    }

    /// The operation name this reader reports in errors.
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Builds a [`FheError::Serialization`] for this reader's operation.
    pub fn err(&self, reason: String) -> FheError {
        FheError::Serialization {
            op: self.op,
            reason,
        }
    }

    /// Current offset into the blob.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The raw bytes between `start` and the current position — used to
    /// recompute checksums over a just-parsed region.
    pub fn region_since(&self, start: usize) -> &'a [u8] {
        &self.buf[start..self.pos]
    }

    /// Consumes exactly `len` bytes.
    pub fn take(&mut self, len: usize) -> FheResult<&'a [u8]> {
        if self.remaining() < len {
            return Err(self.err(format!(
                "truncated blob: wanted {len} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> FheResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> FheResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> FheResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> FheResult<u64> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> FheResult<i64> {
        Ok(self.u64()? as i64)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> FheResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Asserts the whole blob was consumed — trailing garbage is rejected,
    /// not ignored.
    pub fn finish(self) -> FheResult<()> {
        if self.remaining() != 0 {
            return Err(self.err(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Parses and validates the 16-byte header: magic, version, expected
    /// object tag, reserved byte, and the params fingerprint against
    /// `want_fingerprint` ([`FheError::ParamsMismatch`] on deviation).
    pub fn read_header(&mut self, tag: ObjectTag, want_fingerprint: u64) -> FheResult<()> {
        let magic = self.take(4)?;
        if magic != MAGIC {
            return Err(self.err(format!("bad magic {magic:02x?}, expected {MAGIC:02x?}")));
        }
        let version = self.u16()?;
        if version != FORMAT_VERSION {
            return Err(self.err(format!(
                "unsupported format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let got_tag = self.u8()?;
        if got_tag != tag as u8 {
            return Err(self.err(format!(
                "object tag {got_tag} is not the expected {} ({tag:?})",
                tag as u8
            )));
        }
        let reserved = self.u8()?;
        if reserved != 0 {
            return Err(self.err(format!("reserved header byte is {reserved}, must be 0")));
        }
        let fp = self.u64()?;
        if fp != want_fingerprint {
            return Err(FheError::ParamsMismatch {
                op: self.op,
                got: fp,
                want: want_fingerprint,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Residue-polynomial blocks
// ---------------------------------------------------------------------

/// Serializes one polynomial as a self-checking block: a checksummed
/// `(n, limbs, ntt)` preamble followed by per-limb
/// `(global index, words, checksum)` sections. The limb checksum also mixes
/// the limb's *position* so two intact limb sections cannot be swapped
/// undetected.
pub fn write_poly(out: &mut Vec<u8>, p: &RnsPoly) {
    let meta_start = out.len();
    put_u32(out, p.n() as u32);
    put_u32(out, p.num_limbs() as u32);
    put_u8(out, p.ntt_form() as u8);
    let meta_cksum = fnv1a(&out[meta_start..]);
    put_u64(out, meta_cksum);
    for (k, (idx, words)) in p.limbs().enumerate() {
        put_u32(out, idx);
        put_u64_slice(out, words);
        let h = fnv1a_chain(fnv1a(&(k as u32).to_le_bytes()), &idx.to_le_bytes());
        put_u64(out, fnv1a_words_chain(h, words));
    }
}

/// Parses a polynomial block written by [`write_poly`], verifying the
/// preamble and every per-limb checksum before constructing the polynomial.
pub fn read_poly(r: &mut Reader<'_>) -> FheResult<RnsPoly> {
    let meta_start = r.pos();
    let n = r.u32()? as usize;
    let num_limbs = r.u32()? as usize;
    let ntt_byte = r.u8()?;
    let computed = fnv1a(r.region_since(meta_start));
    let stored = r.u64()?;
    if stored != computed {
        return Err(FheError::ChecksumMismatch {
            op: r.op(),
            section: "poly metadata".into(),
            stored,
            computed,
        });
    }
    if ntt_byte > 1 {
        return Err(r.err(format!("ntt_form byte is {ntt_byte}, must be 0 or 1")));
    }
    let mut basis = Vec::with_capacity(num_limbs);
    let mut coeffs = Vec::with_capacity(n * num_limbs);
    for k in 0..num_limbs {
        let idx = r.u32()?;
        let words = r.take(n * 8)?;
        // Decode the words first, then checksum the decoded form — one
        // pass over the limb instead of a byte-wise pass plus a decode.
        let limb_start = coeffs.len();
        coeffs.extend(words.chunks_exact(8).map(|c| {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            u64::from_le_bytes(w)
        }));
        let h = fnv1a_chain(fnv1a(&(k as u32).to_le_bytes()), &idx.to_le_bytes());
        let computed = fnv1a_words_chain(h, &coeffs[limb_start..]);
        let stored = r.u64()?;
        if stored != computed {
            return Err(FheError::ChecksumMismatch {
                op: r.op(),
                section: format!("limb {k} (global index {idx})"),
                stored,
                computed,
            });
        }
        basis.push(idx);
    }
    RnsPoly::from_raw_parts(n, Basis(basis), coeffs, ntt_byte == 1)
        .map_err(|e| r.err(format!("rejected polynomial parts: {e}")))
}

// ---------------------------------------------------------------------
// Context-bound object (de)serialization
// ---------------------------------------------------------------------

impl CkksContext {
    /// Serializes a bare residue polynomial.
    pub fn serialize_rns_poly(&self, p: &RnsPoly) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + p.num_words() * 8 + p.num_limbs() * 12);
        write_header(&mut out, ObjectTag::RnsPoly, self.params_fingerprint());
        write_poly(&mut out, p);
        out
    }

    /// Loads a residue polynomial written by
    /// [`CkksContext::serialize_rns_poly`].
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`], [`FheError::ChecksumMismatch`], or
    /// [`FheError::ParamsMismatch`] as described in the module docs.
    pub fn try_deserialize_rns_poly(&self, bytes: &[u8]) -> FheResult<RnsPoly> {
        let mut r = Reader::new("load_rns_poly", bytes);
        r.read_header(ObjectTag::RnsPoly, self.params_fingerprint())?;
        let p = read_poly(&mut r)?;
        r.finish()?;
        Ok(p)
    }

    /// Serializes a ciphertext: checksummed `(level, scale, noise)`
    /// metadata followed by the `c0` and `c1` polynomial blocks.
    pub fn serialize_ciphertext(&self, ct: &Ciphertext) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + ct.num_words() * 8);
        write_header(&mut out, ObjectTag::Ciphertext, self.params_fingerprint());
        let meta_start = out.len();
        put_u32(&mut out, ct.level as u32);
        put_f64(&mut out, ct.scale);
        put_f64(&mut out, ct.noise_bits_est);
        let cksum = fnv1a(&out[meta_start..]);
        put_u64(&mut out, cksum);
        write_poly(&mut out, &ct.c0);
        write_poly(&mut out, &ct.c1);
        out
    }

    /// Loads a ciphertext written by [`CkksContext::serialize_ciphertext`],
    /// verifying the fingerprint, the metadata checksum, and every limb
    /// checksum, then validating the shape against this context's modulus
    /// chain.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`], [`FheError::ChecksumMismatch`], or
    /// [`FheError::ParamsMismatch`] as described in the module docs.
    pub fn try_deserialize_ciphertext(&self, bytes: &[u8]) -> FheResult<Ciphertext> {
        let mut r = Reader::new("load_ciphertext", bytes);
        r.read_header(ObjectTag::Ciphertext, self.params_fingerprint())?;
        let meta_start = r.pos();
        let level = r.u32()? as usize;
        let scale = r.f64()?;
        let noise_bits_est = r.f64()?;
        let computed = fnv1a(r.region_since(meta_start));
        let stored = r.u64()?;
        if stored != computed {
            return Err(FheError::ChecksumMismatch {
                op: r.op(),
                section: "ciphertext metadata".into(),
                stored,
                computed,
            });
        }
        if !(1..=self.params().levels).contains(&level) {
            return Err(r.err(format!("level {level} out of range")));
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(r.err(format!("scale {scale} is not a positive finite value")));
        }
        let c0 = read_poly(&mut r)?;
        let c1 = read_poly(&mut r)?;
        r.finish()?;
        let want_basis = self.rns().q_basis(level);
        for (name, p) in [("c0", &c0), ("c1", &c1)] {
            if p.n() != self.params().n {
                return Err(FheError::Serialization {
                    op: "load_ciphertext",
                    reason: format!("{name} ring degree {} != context {}", p.n(), self.params().n),
                });
            }
            if p.basis() != &want_basis {
                return Err(FheError::Serialization {
                    op: "load_ciphertext",
                    reason: format!("{name} basis does not match the level-{level} chain"),
                });
            }
        }
        Ok(Ciphertext {
            c0,
            c1,
            level,
            scale,
            noise_bits_est,
        })
    }

    /// Serializes a keyswitch hint **seeded**: checksummed metadata (kind,
    /// seed, error model, digit partition, integrity digest) plus only the
    /// `k0` polynomial per digit — the pseudo-random `k1` halves are
    /// regenerated from the seed at load time (KSHGen, Sec. 5.2), roughly
    /// halving the blob.
    pub fn serialize_keyswitch_key(&self, ksk: &KeySwitchKey) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + ksk.num_words_seeded() * 8);
        write_header(&mut out, ObjectTag::KeySwitchKey, self.params_fingerprint());
        write_ksk_metadata(
            &mut out,
            ksk.kind,
            ksk.seed,
            ksk.error_bits,
            ksk.digest,
            &ksk.digit_limbs,
        );
        for (k0, _) in &ksk.elems {
            write_poly(&mut out, k0);
        }
        out
    }

    /// Serializes a compact keyswitch hint. The wire bytes are **identical**
    /// to [`CkksContext::serialize_keyswitch_key`] of the materialized key —
    /// the seeded wire format already carries exactly the compact payload —
    /// so full and compact blobs are interchangeable; only the load path
    /// differs (a compact load defers `k1` regeneration to
    /// [`CompactKeySwitchKey::expand`]).
    pub fn serialize_compact_keyswitch_key(&self, key: &CompactKeySwitchKey) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + key.num_words() * 8);
        write_header(&mut out, ObjectTag::KeySwitchKey, self.params_fingerprint());
        write_ksk_metadata(
            &mut out,
            key.kind,
            key.seed,
            key.error_bits,
            key.digest,
            &key.digit_limbs,
        );
        for k0 in &key.k0 {
            write_poly(&mut out, k0);
        }
        out
    }

    /// Loads a keyswitch hint written by
    /// [`CkksContext::serialize_keyswitch_key`], regenerating the
    /// pseudo-random halves from the stored seed and re-verifying the
    /// hint's integrity digest over the reconstructed payload.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`], [`FheError::ChecksumMismatch`], or
    /// [`FheError::ParamsMismatch`] as described in the module docs.
    pub fn try_deserialize_keyswitch_key(&self, bytes: &[u8]) -> FheResult<KeySwitchKey> {
        let mut r = Reader::new("load_keyswitch_key", bytes);
        r.read_header(ObjectTag::KeySwitchKey, self.params_fingerprint())?;
        let meta = read_ksk_metadata(&mut r)?;
        let mut elems = Vec::with_capacity(meta.digit_limbs.len());
        for d in 0..meta.digit_limbs.len() {
            let k0 = read_poly(&mut r)?;
            let k1 = keyswitch::prandom_poly(self.rns(), k0.basis(), meta.seed, d as u64);
            elems.push((k0, k1));
        }
        r.finish()?;
        let ksk = KeySwitchKey {
            kind: meta.kind,
            elems,
            digit_limbs: meta.digit_limbs,
            seed: meta.seed,
            error_bits: meta.error_bits,
            digest: meta.digest,
        };
        let computed = ksk.compute_digest();
        if computed != ksk.digest {
            return Err(FheError::ChecksumMismatch {
                op: "load_keyswitch_key",
                section: "keyswitch integrity digest".into(),
                stored: ksk.digest,
                computed,
            });
        }
        Ok(ksk)
    }

    /// Loads a keyswitch hint blob into its **compact** resident form
    /// without regenerating the pseudo-random halves — the cheap load path
    /// for a key cache that materializes lazily. Structural validation, the
    /// metadata checksum, and every per-limb payload checksum still run
    /// (single-byte corruption is rejected here); the end-to-end integrity
    /// digest is deferred to [`CompactKeySwitchKey::expand`], which is the
    /// first point the materialized payload exists to digest.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`], [`FheError::ChecksumMismatch`], or
    /// [`FheError::ParamsMismatch`] as described in the module docs.
    pub fn try_deserialize_compact_keyswitch_key(
        &self,
        bytes: &[u8],
    ) -> FheResult<CompactKeySwitchKey> {
        let mut r = Reader::new("load_compact_keyswitch_key", bytes);
        r.read_header(ObjectTag::KeySwitchKey, self.params_fingerprint())?;
        let meta = read_ksk_metadata(&mut r)?;
        let mut k0 = Vec::with_capacity(meta.digit_limbs.len());
        for _ in 0..meta.digit_limbs.len() {
            k0.push(read_poly(&mut r)?);
        }
        r.finish()?;
        Ok(CompactKeySwitchKey {
            kind: meta.kind,
            k0,
            digit_limbs: meta.digit_limbs,
            seed: meta.seed,
            error_bits: meta.error_bits,
            digest: meta.digest,
        })
    }
}

/// The checksummed metadata region shared by the full and compact
/// keyswitch-hint blobs.
struct KskMetadata {
    kind: KeySwitchKind,
    seed: u64,
    error_bits: f64,
    digest: u64,
    digit_limbs: Vec<Vec<u32>>,
}

fn write_ksk_metadata(
    out: &mut Vec<u8>,
    kind: KeySwitchKind,
    seed: u64,
    error_bits: f64,
    digest: u64,
    digit_limbs: &[Vec<u32>],
) {
    let meta_start = out.len();
    match kind {
        KeySwitchKind::Standard => {
            put_u8(out, 0);
            put_u32(out, 0);
        }
        KeySwitchKind::Boosted { digits } => {
            put_u8(out, 1);
            put_u32(out, digits as u32);
        }
    }
    put_u32(out, digit_limbs.len() as u32);
    put_u64(out, seed);
    put_f64(out, error_bits);
    put_u64(out, digest);
    for limbs in digit_limbs {
        put_u32(out, limbs.len() as u32);
        for &l in limbs {
            put_u32(out, l);
        }
    }
    let cksum = fnv1a(&out[meta_start..]);
    put_u64(out, cksum);
}

fn read_ksk_metadata(r: &mut Reader<'_>) -> FheResult<KskMetadata> {
    let meta_start = r.pos();
    let kind_byte = r.u8()?;
    let digits = r.u32()? as usize;
    let num_digits = r.u32()? as usize;
    let seed = r.u64()?;
    let error_bits = r.f64()?;
    let digest = r.u64()?;
    let mut digit_limbs = Vec::with_capacity(num_digits);
    for _ in 0..num_digits {
        let count = r.u32()? as usize;
        let mut limbs = Vec::with_capacity(count);
        for _ in 0..count {
            limbs.push(r.u32()?);
        }
        digit_limbs.push(limbs);
    }
    let computed = fnv1a(r.region_since(meta_start));
    let stored = r.u64()?;
    if stored != computed {
        return Err(FheError::ChecksumMismatch {
            op: r.op(),
            section: "keyswitch metadata".into(),
            stored,
            computed,
        });
    }
    let kind = match (kind_byte, digits) {
        (0, 0) => KeySwitchKind::Standard,
        (1, d) if d >= 1 => KeySwitchKind::Boosted { digits: d },
        _ => {
            return Err(r.err(format!(
                "invalid kind encoding (kind byte {kind_byte}, digits {digits})"
            )))
        }
    };
    Ok(KskMetadata {
        kind,
        seed,
        error_bits,
        digest,
        digit_limbs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CkksParams;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(4)
            .special_limbs(4)
            .limb_bits(40)
            .scale_bits(32)
            .build()
            .unwrap();
        CkksContext::new(params).unwrap()
    }

    #[test]
    fn peek_header_classifies_without_full_parse() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let sk = c.keygen(&mut rng);
        let ct = c.encrypt(&c.encode(&[1.0], c.default_scale(), 2), &sk, &mut rng);
        let blob = c.serialize_ciphertext(&ct);
        let (tag, fp) = peek_header("peek", &blob).unwrap();
        assert_eq!(tag, ObjectTag::Ciphertext);
        assert_eq!(fp, c.params_fingerprint());
        // A flipped *payload* byte is invisible to the peek (full loads
        // catch it); a damaged header is not.
        let mut payload_flip = blob.clone();
        let last = payload_flip.len() - 1;
        payload_flip[last] ^= 0xff;
        assert!(peek_header("peek", &payload_flip).is_ok());
        for (i, expect_kind) in [(0usize, "magic"), (4, "version"), (6, "tag"), (7, "reserved")] {
            let mut bad = blob.clone();
            bad[i] ^= 0xff;
            let err = peek_header("peek", &bad).expect_err(expect_kind);
            assert!(matches!(err, FheError::Serialization { op: "peek", .. }), "{expect_kind}");
        }
        // Truncation anywhere inside the 16-byte header is a structured error.
        for len in 0..16 {
            assert!(peek_header("peek", &blob[..len]).is_err());
        }
    }

    #[test]
    fn fingerprint_separates_parameter_sets() {
        let a = ctx();
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(3)
            .special_limbs(3)
            .limb_bits(40)
            .scale_bits(32)
            .build()
            .unwrap();
        let b = CkksContext::new(params).unwrap();
        assert_ne!(a.params_fingerprint(), b.params_fingerprint());
        assert_eq!(a.params_fingerprint(), ctx().params_fingerprint());
    }

    #[test]
    fn ciphertext_roundtrip_is_bit_identical() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sk = c.keygen(&mut rng);
        let pt = c.encode(&[1.25, -0.5, 3.0], c.default_scale(), 3);
        let ct = c.encrypt(&pt, &sk, &mut rng);
        let blob = c.serialize_ciphertext(&ct);
        let back = c.try_deserialize_ciphertext(&blob).unwrap();
        assert_eq!(ct, back);
        assert_eq!(
            ct.noise_estimate_bits().to_bits(),
            back.noise_estimate_bits().to_bits()
        );
    }

    #[test]
    fn rns_poly_roundtrip() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let basis = c.rns().q_basis(2);
        let p = c.rns().sample_uniform(&basis, &mut rng);
        let blob = c.serialize_rns_poly(&p);
        assert_eq!(c.try_deserialize_rns_poly(&blob).unwrap(), p);
    }

    #[test]
    fn seeded_keyswitch_key_roundtrip_reconstructs_prandom_half() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let sk = c.keygen(&mut rng);
        let s2 = c.keygen(&mut rng);
        for kind in [
            KeySwitchKind::Standard,
            KeySwitchKind::Boosted { digits: 2 },
        ] {
            let ksk = c.keyswitch_keygen(&s2.s, &sk, kind, &mut rng);
            let blob = c.serialize_keyswitch_key(&ksk);
            assert!(blob.len() < 16 + ksk.num_words_full() * 8, "not seeded");
            let back = c.try_deserialize_keyswitch_key(&blob).unwrap();
            assert!(back.verify_integrity());
            assert_eq!(back.seed(), ksk.seed());
            assert_eq!(back.num_digits(), ksk.num_digits());
            for (a, b) in ksk.elems.iter().zip(back.elems.iter()) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1, b.1);
            }
        }
    }

    #[test]
    fn compact_blob_is_bytes_identical_and_interchangeable() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let sk = c.keygen(&mut rng);
        let ksk = c.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 2 }, &mut rng);
        let compact = ksk.to_compact();
        let full_blob = c.serialize_keyswitch_key(&ksk);
        let compact_blob = c.serialize_compact_keyswitch_key(&compact);
        assert_eq!(full_blob, compact_blob, "one wire format, two load paths");
        // Compact load skips k1 regen; expansion then reproduces the key.
        let back = c.try_deserialize_compact_keyswitch_key(&full_blob).unwrap();
        assert_eq!(back.integrity_digest(), ksk.integrity_digest());
        assert_eq!(back.resident_bytes() * 2, ksk.resident_bytes());
        let expanded = back.expand(&c).unwrap();
        assert!(expanded.verify_integrity());
        for (a, b) in ksk.elems.iter().zip(expanded.elems.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn corrupted_compact_payload_is_rejected_at_load_or_expand() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let sk = c.keygen(&mut rng);
        let ksk = c.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 2 }, &mut rng);
        let blob = c.serialize_compact_keyswitch_key(&ksk.to_compact());
        // A flipped payload byte trips the per-limb checksum at load time.
        let mut flipped = blob.clone();
        let off = flipped.len() - 64;
        flipped[off] ^= 0x01;
        assert!(matches!(
            c.try_deserialize_compact_keyswitch_key(&flipped),
            Err(FheError::ChecksumMismatch { .. })
        ));
        // A compact key whose digest no longer matches its payload (e.g. a
        // wrong seed smuggled past the wire checks) fails at expand.
        let mut tampered = c.try_deserialize_compact_keyswitch_key(&blob).unwrap();
        tampered.seed ^= 1;
        assert!(matches!(
            tampered.expand(&c),
            Err(FheError::CorruptKey { .. })
        ));
    }

    #[test]
    fn wrong_context_is_rejected_with_params_mismatch() {
        let c = ctx();
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(4)
            .special_limbs(4)
            .limb_bits(40)
            .scale_bits(30) // different scale only
            .build()
            .unwrap();
        let other = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let sk = c.keygen(&mut rng);
        let pt = c.encode(&[1.0], c.default_scale(), 2);
        let ct = c.encrypt(&pt, &sk, &mut rng);
        let blob = c.serialize_ciphertext(&ct);
        assert!(matches!(
            other.try_deserialize_ciphertext(&blob),
            Err(FheError::ParamsMismatch { .. })
        ));
    }

    #[test]
    fn flipped_limb_word_is_rejected_with_checksum_mismatch() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let sk = c.keygen(&mut rng);
        let pt = c.encode(&[2.0], c.default_scale(), 3);
        let ct = c.encrypt(&pt, &sk, &mut rng);
        let mut blob = c.serialize_ciphertext(&ct);
        let off = blob.len() - 64; // inside c1's last limb words
        blob[off] ^= 0x40;
        assert!(matches!(
            c.try_deserialize_ciphertext(&blob),
            Err(FheError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_rejected_with_serialization_error() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let sk = c.keygen(&mut rng);
        let pt = c.encode(&[2.0], c.default_scale(), 2);
        let ct = c.encrypt(&pt, &sk, &mut rng);
        let blob = c.serialize_ciphertext(&ct);
        assert!(matches!(
            c.try_deserialize_ciphertext(&blob[..blob.len() - 1]),
            Err(FheError::Serialization { .. })
        ));
        // Trailing garbage is equally structural.
        let mut padded = blob.clone();
        padded.push(0);
        assert!(matches!(
            c.try_deserialize_ciphertext(&padded),
            Err(FheError::Serialization { .. })
        ));
    }
}
