//! The CKKS context: parameters, RNS machinery, encoder, and key/ct I/O.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use cl_math::{BigUint, Complex, SpecialFft};
use cl_rns::{BaseConverter, Basis, RnsContext, RnsError};
use rand::Rng;

use crate::error::{FheError, FheResult};
use crate::params::ParamsError;
use crate::{Ciphertext, CkksParams, KeySwitchKey, Plaintext, PublicKey, SecretKey};

/// Errors produced by CKKS operations.
#[derive(Debug)]
pub enum CkksError {
    /// Parameter validation failed.
    Params(ParamsError),
    /// RNS-layer failure (e.g. not enough NTT-friendly primes).
    Rns(RnsError),
    /// An operation was applied to incompatible operands.
    Incompatible(String),
}

impl fmt::Display for CkksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkksError::Params(e) => write!(f, "{e}"),
            CkksError::Rns(e) => write!(f, "{e}"),
            CkksError::Incompatible(msg) => write!(f, "incompatible operands: {msg}"),
        }
    }
}

impl std::error::Error for CkksError {}

impl From<RnsError> for CkksError {
    fn from(e: RnsError) -> Self {
        CkksError::Rns(e)
    }
}

impl From<ParamsError> for CkksError {
    fn from(e: ParamsError) -> Self {
        CkksError::Params(e)
    }
}

/// Runtime guardrail policy: what a context checks (and repairs) on every
/// fallible (`try_*`) homomorphic operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GuardrailPolicy {
    /// Legacy behaviour: no runtime checks beyond the basic shape
    /// assertions. The default.
    #[default]
    Permissive,
    /// Validate operand conformance (residue ranges, bases, NTT form,
    /// scales), verify keyswitch-hint integrity digests, and fail with
    /// [`FheError::BudgetExhausted`](crate::FheError::BudgetExhausted)
    /// when an operation's result would have less than `min_budget_bits`
    /// of estimated (signed) noise budget left.
    Strict {
        /// Minimum acceptable signed budget (bits) after each operation.
        min_budget_bits: f64,
    },
    /// Recover scale drift automatically: multiplication-family results
    /// whose scale has grown to the square of the default scale are
    /// rescaled before being returned, and addition-family operands at
    /// different levels are aligned with a `mod_drop`. No integrity
    /// checks.
    AutoRescale,
}

/// Cache of base converters keyed by `(source, destination)` limb bases.
type ConverterCache = Mutex<HashMap<(Vec<u32>, Vec<u32>), Arc<BaseConverter>>>;

/// A fully initialized CKKS instance.
///
/// Owns the RNS context (modulus chains and NTT tables), the encoder FFT,
/// and a cache of base converters keyed by `(source, destination)` basis —
/// the software analogue of the CRB unit's constant buffers.
pub struct CkksContext {
    params: CkksParams,
    rns: RnsContext,
    fft: SpecialFft,
    converters: ConverterCache,
    policy: GuardrailPolicy,
}

impl fmt::Debug for CkksContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CkksContext")
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

impl CkksContext {
    /// Initializes a context from validated parameters: generates the
    /// modulus chains and precomputes NTT/FFT tables.
    ///
    /// # Errors
    ///
    /// Fails if not enough NTT-friendly primes of the requested width exist
    /// for this ring degree.
    pub fn new(params: CkksParams) -> Result<Self, CkksError> {
        let rns = RnsContext::generate(
            params.n,
            params.levels,
            params.special_limbs,
            params.limb_bits,
        )?;
        let fft = SpecialFft::new(params.n / 2);
        Ok(Self {
            params,
            rns,
            fft,
            converters: Mutex::new(HashMap::new()),
            policy: GuardrailPolicy::default(),
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// The active guardrail policy.
    pub fn policy(&self) -> GuardrailPolicy {
        self.policy
    }

    /// Sets the guardrail policy for all subsequent `try_*` operations.
    pub fn set_policy(&mut self, policy: GuardrailPolicy) {
        self.policy = policy;
    }

    /// Builder-style [`CkksContext::set_policy`].
    #[must_use]
    pub fn with_policy(mut self, policy: GuardrailPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The underlying RNS context.
    pub fn rns(&self) -> &RnsContext {
        &self.rns
    }

    /// The default encoding scale.
    pub fn default_scale(&self) -> f64 {
        self.params.scale()
    }

    /// The maximum level (multiplicative budget) of fresh ciphertexts.
    pub fn max_level(&self) -> usize {
        self.params.levels
    }

    /// A 64-bit fingerprint of the parameters that determine wire-format
    /// compatibility: ring degree, the full modulus chain (ciphertext and
    /// special limbs, in order), the default scale, and the digit budget
    /// implied by the special-limb count.
    ///
    /// Serialized blobs record this fingerprint; load paths reject blobs
    /// whose fingerprint differs from the loading context's
    /// ([`FheError::ParamsMismatch`]). FNV-1a over the parameter words, same
    /// construction as the keyswitch-hint integrity digest.
    pub fn params_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for half in [word as u32 as u64, word >> 32] {
                h ^= half;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.params.n as u64);
        mix(self.params.levels as u64);
        mix(self.params.special_limbs as u64);
        mix(self.params.scale().to_bits());
        for limb in 0..self.rns.num_q() + self.rns.num_p() {
            mix(self.rns.modulus_value(limb as u32));
        }
        h
    }

    /// Fetches (or builds and caches) the base converter from `src` to
    /// `dst`.
    pub fn converter(&self, src: &Basis, dst: &Basis) -> Arc<BaseConverter> {
        let key = (src.0.clone(), dst.0.clone());
        let mut cache = self.converters.lock().expect("converter cache poisoned");
        cache
            .entry(key)
            .or_insert_with(|| Arc::new(BaseConverter::new(&self.rns, src.clone(), dst.clone())))
            .clone()
    }

    // ------------------------------------------------------------------
    // Encoding
    // ------------------------------------------------------------------

    /// Encodes complex slot values into a plaintext at the given scale and
    /// level. Unfilled slots are zero.
    ///
    /// # Panics
    ///
    /// Panics if more than `N/2` values are supplied or `level` is out of
    /// range.
    pub fn encode_complex(&self, vals: &[Complex], scale: f64, level: usize) -> Plaintext {
        let slots = self.params.slots();
        assert!(vals.len() <= slots, "too many values for {slots} slots");
        assert!((1..=self.params.levels).contains(&level), "bad level");
        let mut v = vec![Complex::default(); slots];
        v[..vals.len()].copy_from_slice(vals);
        self.fft.inverse(&mut v);
        let signed: Vec<i64> = v
            .iter()
            .map(|c| (c.re * scale).round() as i64)
            .chain(v.iter().map(|c| (c.im * scale).round() as i64))
            .collect();
        let basis = self.rns.q_basis(level);
        let mut poly = self.rns.from_signed_coeffs(&signed, &basis);
        self.rns.to_ntt(&mut poly);
        Plaintext { poly, level, scale }
    }

    /// Encodes real slot values (imaginary parts zero).
    ///
    /// # Panics
    ///
    /// Panics if more than `N/2` values are supplied or `level` is out of
    /// range.
    pub fn encode(&self, vals: &[f64], scale: f64, level: usize) -> Plaintext {
        let cvals: Vec<Complex> = vals.iter().map(|&r| Complex::new(r, 0.0)).collect();
        self.encode_complex(&cvals, scale, level)
    }

    /// Decodes a plaintext back to `count` complex slot values.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the slot count.
    pub fn decode_complex(&self, pt: &Plaintext, count: usize) -> Vec<Complex> {
        let slots = self.params.slots();
        assert!(count <= slots);
        let mut poly = pt.poly.clone();
        self.rns.from_ntt(&mut poly);
        let moduli: Vec<u64> = poly
            .basis()
            .0
            .iter()
            .map(|&l| self.rns.modulus_value(l))
            .collect();
        let q_big = BigUint::product(&moduli);
        let n = self.params.n;
        let mut signed = vec![0f64; n];
        let num_limbs = poly.num_limbs();
        // Fast path for a single limb; exact CRT otherwise.
        if num_limbs == 1 {
            let m = self.rns.modulus(poly.basis().0[0]);
            for (i, s) in signed.iter_mut().enumerate() {
                *s = m.lift_centered(poly.limb(0)[i]) as f64;
            }
        } else {
            let mut residues = vec![0u64; num_limbs];
            for (i, s) in signed.iter_mut().enumerate() {
                for (k, r) in residues.iter_mut().enumerate() {
                    *r = poly.limb(k)[i];
                }
                let big = BigUint::crt_combine(&residues, &moduli);
                let (neg, mag) = big.centered(&q_big);
                *s = if neg { -mag.to_f64() } else { mag.to_f64() };
            }
        }
        let mut v: Vec<Complex> = (0..slots)
            .map(|j| Complex::new(signed[j] / pt.scale, signed[j + slots] / pt.scale))
            .collect();
        self.fft.forward(&mut v);
        v.truncate(count);
        v
    }

    /// Decodes a plaintext back to `count` real values (imaginary parts are
    /// discarded).
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the slot count.
    pub fn decode(&self, pt: &Plaintext, count: usize) -> Vec<f64> {
        self.decode_complex(pt, count).iter().map(|c| c.re).collect()
    }

    // ------------------------------------------------------------------
    // Keys, encryption, decryption
    // ------------------------------------------------------------------

    /// The full basis (all ciphertext moduli plus all special moduli).
    pub(crate) fn full_basis(&self) -> Basis {
        self.rns
            .q_basis(self.params.levels)
            .union(&self.rns.p_basis(self.params.special_limbs))
    }

    /// Generates a fresh ternary secret key.
    pub fn keygen<R: Rng + ?Sized>(&self, rng: &mut R) -> SecretKey {
        let basis = self.full_basis();
        let mut s = self.rns.sample_ternary(&basis, rng);
        self.rns.to_ntt(&mut s);
        SecretKey { s }
    }

    /// Generates a sparse ternary secret key with Hamming weight `h`.
    ///
    /// Sparse keys bound the integer overflow polynomial of bootstrapping's
    /// ModRaise (`|I| <= (h+1)/2`), keeping the EvalMod approximation range
    /// small. (The paper's evaluation uses non-sparse keys with newer
    /// range-extension techniques; our functional bootstrapping uses sparse
    /// keys for the classic algorithm.)
    ///
    /// # Panics
    ///
    /// Panics if `h` is zero or exceeds the ring degree.
    pub fn keygen_sparse<R: Rng + ?Sized>(&self, h: usize, rng: &mut R) -> SecretKey {
        let n = self.params.n;
        assert!(h >= 1 && h <= n, "Hamming weight out of range");
        let mut signed = vec![0i64; n];
        let mut placed = 0;
        while placed < h {
            let pos = rng.gen_range(0..n);
            if signed[pos] == 0 {
                signed[pos] = if rng.gen_bool(0.5) { 1 } else { -1 };
                placed += 1;
            }
        }
        let basis = self.full_basis();
        let mut s = self.rns.from_signed_coeffs(&signed, &basis);
        self.rns.to_ntt(&mut s);
        SecretKey { s }
    }

    /// Derives a public encryption key from a secret key.
    pub fn keygen_public<R: Rng + ?Sized>(&self, sk: &SecretKey, rng: &mut R) -> PublicKey {
        let basis = self.rns.q_basis(self.params.levels);
        let a = self.rns.sample_uniform(&basis, rng);
        let mut e = self.rns.sample_error(&basis, rng);
        self.rns.to_ntt(&mut e);
        let s = self.rns.restrict(&sk.s, &basis);
        let mut pk0 = self.rns.neg(&self.rns.mul(&a, &s));
        self.rns.add_assign(&mut pk0, &e);
        PublicKey { pk0, pk1: a }
    }

    /// Encrypts a plaintext under the secret key (symmetric encryption).
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        pt: &Plaintext,
        sk: &SecretKey,
        rng: &mut R,
    ) -> Ciphertext {
        let basis = self.rns.q_basis(pt.level);
        let a = self.rns.sample_uniform(&basis, rng);
        let mut e = self.rns.sample_error(&basis, rng);
        self.rns.to_ntt(&mut e);
        let s = self.rns.restrict(&sk.s, &basis);
        let mut c0 = self.rns.neg(&self.rns.mul(&a, &s));
        self.rns.add_assign(&mut c0, &e);
        self.rns.add_assign(&mut c0, &pt.poly);
        Ciphertext {
            c0,
            c1: a,
            level: pt.level,
            scale: pt.scale,
            noise_bits_est: self.est_fresh_bits(),
        }
    }

    /// Encrypts a plaintext under a public key.
    pub fn encrypt_public<R: Rng + ?Sized>(
        &self,
        pt: &Plaintext,
        pk: &PublicKey,
        rng: &mut R,
    ) -> Ciphertext {
        let basis = self.rns.q_basis(pt.level);
        let mut u = self.rns.sample_ternary(&basis, rng);
        self.rns.to_ntt(&mut u);
        let mut e0 = self.rns.sample_error(&basis, rng);
        let mut e1 = self.rns.sample_error(&basis, rng);
        self.rns.to_ntt(&mut e0);
        self.rns.to_ntt(&mut e1);
        let pk0 = self.rns.restrict(&pk.pk0, &basis);
        let pk1 = self.rns.restrict(&pk.pk1, &basis);
        let mut c0 = self.rns.mul(&pk0, &u);
        self.rns.add_assign(&mut c0, &e0);
        self.rns.add_assign(&mut c0, &pt.poly);
        let mut c1 = self.rns.mul(&pk1, &u);
        self.rns.add_assign(&mut c1, &e1);
        Ciphertext {
            c0,
            c1,
            level: pt.level,
            scale: pt.scale,
            noise_bits_est: self.est_public_bits(),
        }
    }

    /// Decrypts a ciphertext: `m = c0 + c1·s`.
    pub fn decrypt(&self, ct: &Ciphertext, sk: &SecretKey) -> Plaintext {
        let basis = self.rns.q_basis(ct.level);
        let s = self.rns.restrict(&sk.s, &basis);
        let mut m = self.rns.mul(&ct.c1, &s);
        self.rns.add_assign(&mut m, &ct.c0);
        Plaintext {
            poly: m,
            level: ct.level,
            scale: ct.scale,
        }
    }

    /// Assembles a ciphertext from raw polynomials (advanced; used by
    /// bootstrapping's ModRaise to re-express a ciphertext over a larger
    /// modulus chain).
    ///
    /// The noise estimate is initialized to the fresh-encryption figure;
    /// callers who know better (e.g. ModRaise, whose "noise" includes the
    /// intentional `q0·I` term) should follow up with
    /// [`Ciphertext::with_noise_bits`].
    ///
    /// # Panics
    ///
    /// Panics if the polynomials are not NTT-form level-`level` pairs.
    pub fn ciphertext_from_parts(
        &self,
        c0: cl_rns::RnsPoly,
        c1: cl_rns::RnsPoly,
        level: usize,
        scale: f64,
    ) -> Ciphertext {
        let expected = self.rns.q_basis(level);
        assert_eq!(c0.basis(), &expected, "c0 basis mismatch");
        assert_eq!(c1.basis(), &expected, "c1 basis mismatch");
        assert!(c0.ntt_form() && c1.ntt_form(), "parts must be in NTT form");
        Ciphertext {
            c0,
            c1,
            level,
            scale,
            noise_bits_est: self.est_fresh_bits(),
        }
    }

    /// Builds a trivial (noiseless, insecure) ciphertext of a plaintext —
    /// useful for testing and for public constants.
    pub fn trivial_encrypt(&self, pt: &Plaintext) -> Ciphertext {
        let basis = self.rns.q_basis(pt.level);
        let mut c1 = self.rns.zero(&basis);
        c1.set_ntt_form(true);
        Ciphertext {
            c0: pt.poly.clone(),
            c1,
            level: pt.level,
            scale: pt.scale,
            noise_bits_est: 0.0,
        }
    }

    // ------------------------------------------------------------------
    // Guardrails
    // ------------------------------------------------------------------

    /// Checks that two ciphertexts agree in level and (within the
    /// configured relative tolerance) in scale.
    pub(crate) fn try_check_same_shape(
        &self,
        op: &'static str,
        a: &Ciphertext,
        b: &Ciphertext,
    ) -> FheResult<()> {
        if a.level != b.level {
            return Err(FheError::LevelMismatch {
                op,
                got: b.level,
                want: a.level,
            });
        }
        self.try_check_scale(op, b.scale, a.scale)
    }

    /// Checks that `got` is within the configured relative tolerance of
    /// `want`.
    pub(crate) fn try_check_scale(&self, op: &'static str, got: f64, want: f64) -> FheResult<()> {
        let rel = (got - want).abs() / got.max(want);
        // A NaN scale makes `rel` NaN; treat any non-finite comparison as
        // a mismatch so corrupted bookkeeping cannot pass the guard.
        if rel < self.params.scale_rel_tolerance && rel.is_finite() {
            Ok(())
        } else {
            Err(FheError::ScaleMismatch { op, got, want, rel })
        }
    }

    /// Full conformance validation of a ciphertext: level range, bases,
    /// NTT form, scale sanity, and — the expensive part — every residue
    /// below its modulus. A random bit flip in a limb word is
    /// overwhelmingly likely to push the residue out of range, so this
    /// scan is the strict policy's detector for payload corruption.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::CorruptCiphertext`] describing the first
    /// violation found.
    pub fn validate_ciphertext(&self, op: &'static str, ct: &Ciphertext) -> FheResult<()> {
        let corrupt = |reason: String| FheError::CorruptCiphertext { op, reason };
        if !(1..=self.params.levels).contains(&ct.level) {
            return Err(corrupt(format!("level {} out of range", ct.level)));
        }
        if !(ct.scale.is_finite() && ct.scale > 0.0) {
            return Err(corrupt(format!("scale {} is not a positive finite value", ct.scale)));
        }
        let expected = self.rns.q_basis(ct.level);
        for (name, poly) in [("c0", &ct.c0), ("c1", &ct.c1)] {
            if poly.basis() != &expected {
                return Err(corrupt(format!("{name} basis does not match level {}", ct.level)));
            }
            if !poly.ntt_form() {
                return Err(corrupt(format!("{name} is not in NTT form")));
            }
            for (k, &limb) in expected.0.iter().enumerate() {
                let q = self.rns.modulus_value(limb);
                if let Some(i) = poly.limb(k).iter().position(|&w| w >= q) {
                    return Err(corrupt(format!(
                        "{name} limb {k} coefficient {i} = {} exceeds modulus {q}",
                        poly.limb(k)[i]
                    )));
                }
            }
        }
        Ok(())
    }

    /// Strict-policy operand validation: conformance-checks every operand
    /// ciphertext. No-op under other policies.
    pub(crate) fn guard_operands(&self, op: &'static str, cts: &[&Ciphertext]) -> FheResult<()> {
        if let GuardrailPolicy::Strict { .. } = self.policy {
            for ct in cts {
                self.validate_ciphertext(op, ct)?;
            }
        }
        Ok(())
    }

    /// Strict-policy key validation: verifies the hint's integrity digest.
    /// No-op under other policies.
    pub(crate) fn guard_key(&self, op: &'static str, ksk: &KeySwitchKey) -> FheResult<()> {
        if let GuardrailPolicy::Strict { .. } = self.policy {
            if !ksk.verify_integrity() {
                return Err(FheError::CorruptKey {
                    op,
                    reason: "integrity digest does not match the payload".into(),
                });
            }
        }
        Ok(())
    }

    /// Strict-policy budget check on an operation's result: errors when
    /// the estimated signed budget falls below the policy threshold.
    /// No-op under other policies.
    pub(crate) fn guard_budget(&self, op: &'static str, ct: &Ciphertext) -> FheResult<()> {
        if let GuardrailPolicy::Strict { min_budget_bits } = self.policy {
            let budget_bits = self.budget_bits_signed(ct);
            if budget_bits < min_budget_bits || budget_bits.is_nan() {
                return Err(FheError::BudgetExhausted {
                    op,
                    budget_bits,
                    required_bits: min_budget_bits,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(3)
            .special_limbs(3)
            .limb_bits(40)
            .scale_bits(32)
            .build()
            .unwrap();
        CkksContext::new(params).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = ctx();
        let vals: Vec<f64> = (0..c.params().slots()).map(|i| (i as f64) / 7.0 - 3.0).collect();
        let pt = c.encode(&vals, c.default_scale(), 3);
        let back = c.decode(&pt, vals.len());
        for (a, b) in back.iter().zip(&vals) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn encode_decode_complex_roundtrip() {
        let c = ctx();
        let vals = vec![Complex::new(1.25, -0.5), Complex::new(-2.0, 3.75)];
        let pt = c.encode_complex(&vals, c.default_scale(), 2);
        let back = c.decode_complex(&pt, 2);
        for (a, b) in back.iter().zip(&vals) {
            assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn encrypt_decrypt_symmetric() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sk = c.keygen(&mut rng);
        let vals = vec![3.5, -1.25, 0.0, 42.0];
        let pt = c.encode(&vals, c.default_scale(), 3);
        let ct = c.encrypt(&pt, &sk, &mut rng);
        let back = c.decode(&c.decrypt(&ct, &sk), 4);
        for (a, b) in back.iter().zip(&vals) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn encrypt_decrypt_public() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sk = c.keygen(&mut rng);
        let pk = c.keygen_public(&sk, &mut rng);
        let vals = vec![0.5, -0.25, 8.0];
        let pt = c.encode(&vals, c.default_scale(), 3);
        let ct = c.encrypt_public(&pt, &pk, &mut rng);
        let back = c.decode(&c.decrypt(&ct, &sk), 3);
        for (a, b) in back.iter().zip(&vals) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sk = c.keygen(&mut rng);
        let pt = c.encode(&[1.0], c.default_scale(), 2);
        let ct1 = c.encrypt(&pt, &sk, &mut rng);
        let ct2 = c.encrypt(&pt, &sk, &mut rng);
        assert_ne!(ct1.c1(), ct2.c1(), "fresh randomness per encryption");
    }

    #[test]
    fn trivial_encrypt_decrypts_without_key_material() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let sk = c.keygen(&mut rng);
        let pt = c.encode(&[7.0, -7.0], c.default_scale(), 1);
        let ct = c.trivial_encrypt(&pt);
        let back = c.decode(&c.decrypt(&ct, &sk), 2);
        assert!((back[0] - 7.0).abs() < 1e-6);
        assert!((back[1] + 7.0).abs() < 1e-6);
    }
}
