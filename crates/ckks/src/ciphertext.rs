//! Plaintext and ciphertext containers.

use cl_rns::RnsPoly;

/// An encoded (but not encrypted) CKKS message: a scaled integer polynomial.
#[derive(Debug, Clone, PartialEq)]
pub struct Plaintext {
    pub(crate) poly: RnsPoly,
    pub(crate) level: usize,
    pub(crate) scale: f64,
}

impl Plaintext {
    /// The underlying RNS polynomial (NTT form).
    pub fn poly(&self) -> &RnsPoly {
        &self.poly
    }

    /// The level (number of RNS limbs) this plaintext is encoded at.
    pub fn level(&self) -> usize {
        self.level
    }

    /// The encoding scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// A CKKS ciphertext: two RNS polynomials `(c0, c1)` with
/// `c0 + c1·s ≈ scale·message` (Sec. 2.2), plus its level and scale.
#[derive(Debug, Clone, PartialEq)]
pub struct Ciphertext {
    pub(crate) c0: RnsPoly,
    pub(crate) c1: RnsPoly,
    pub(crate) level: usize,
    pub(crate) scale: f64,
}

impl Ciphertext {
    /// The `c0` polynomial (NTT form).
    pub fn c0(&self) -> &RnsPoly {
        &self.c0
    }

    /// The `c1` polynomial (NTT form).
    pub fn c1(&self) -> &RnsPoly {
        &self.c1
    }

    /// Current level: the number of RNS limbs per polynomial (the paper's
    /// remaining multiplicative budget `L`).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Current scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Payload size in machine words (both polynomials).
    pub fn num_words(&self) -> usize {
        self.c0.num_words() + self.c1.num_words()
    }

    /// Overrides the recorded scale (advanced; used by bootstrapping to
    /// reinterpret values, e.g. reading `m·Δ + q0·I` as `(m·Δ)/q0 + I` by
    /// recording the scale as `q0`).
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }
}
