//! Plaintext and ciphertext containers.

use cl_rns::RnsPoly;

/// An encoded (but not encrypted) CKKS message: a scaled integer polynomial.
#[derive(Debug, Clone, PartialEq)]
pub struct Plaintext {
    pub(crate) poly: RnsPoly,
    pub(crate) level: usize,
    pub(crate) scale: f64,
}

impl Plaintext {
    /// The underlying RNS polynomial (NTT form).
    pub fn poly(&self) -> &RnsPoly {
        &self.poly
    }

    /// The level (number of RNS limbs) this plaintext is encoded at.
    pub fn level(&self) -> usize {
        self.level
    }

    /// The encoding scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// A CKKS ciphertext: two RNS polynomials `(c0, c1)` with
/// `c0 + c1·s ≈ scale·message` (Sec. 2.2), plus its level and scale.
///
/// Each ciphertext also carries a secret-key-free *noise estimate*
/// (`log2` of the absolute noise magnitude), updated analytically by every
/// homomorphic operation and consumed by
/// [`CkksContext::budget_bits`](crate::CkksContext::budget_bits) and the
/// [`GuardrailPolicy`](crate::GuardrailPolicy) runtime checks. The estimate
/// is metadata: it does not participate in equality comparisons.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    pub(crate) c0: RnsPoly,
    pub(crate) c1: RnsPoly,
    pub(crate) level: usize,
    pub(crate) scale: f64,
    /// Analytic estimate of `log2(noise magnitude)`; `0.0` means "at most
    /// one coefficient unit" (e.g. a trivial encryption).
    pub(crate) noise_bits_est: f64,
}

impl PartialEq for Ciphertext {
    /// Compares payload (polynomials, level, scale) only; the noise
    /// estimate is bookkeeping and two ciphertexts with identical payloads
    /// are the same ciphertext regardless of how their noise was tracked.
    fn eq(&self, other: &Self) -> bool {
        self.c0 == other.c0
            && self.c1 == other.c1
            && self.level == other.level
            && self.scale == other.scale
    }
}

impl Ciphertext {
    /// The `c0` polynomial (NTT form).
    pub fn c0(&self) -> &RnsPoly {
        &self.c0
    }

    /// The `c1` polynomial (NTT form).
    pub fn c1(&self) -> &RnsPoly {
        &self.c1
    }

    /// Current level: the number of RNS limbs per polynomial (the paper's
    /// remaining multiplicative budget `L`).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Current scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The analytic noise estimate: `log2` of the (absolute) noise
    /// magnitude this ciphertext is believed to carry. Tracked without the
    /// secret key; validated against the exact
    /// [`noise_bits`](crate::CkksContext::noise_bits) oracle in tests.
    pub fn noise_estimate_bits(&self) -> f64 {
        self.noise_bits_est
    }

    /// Payload size in machine words (both polynomials).
    pub fn num_words(&self) -> usize {
        self.c0.num_words() + self.c1.num_words()
    }

    /// Overrides the recorded scale (advanced; used by bootstrapping to
    /// reinterpret values, e.g. reading `m·Δ + q0·I` as `(m·Δ)/q0 + I` by
    /// recording the scale as `q0`). The absolute noise magnitude — and
    /// therefore the noise estimate — is unchanged by reinterpretation.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Overrides the tracked noise estimate (advanced; used when a
    /// ciphertext is assembled from raw parts, e.g. bootstrapping's
    /// ModRaise, where the caller knows the true noise better than any
    /// generic default).
    pub fn with_noise_bits(mut self, bits: f64) -> Self {
        self.noise_bits_est = bits;
        self
    }
}
