//! CKKS parameter sets.

use std::fmt;

/// Parameters of a CKKS instance.
///
/// `levels` is the paper's multiplicative budget `L`: the number of
/// ciphertext moduli in the chain. `special_limbs` is the number of special
/// moduli `P` available to boosted keyswitching (the paper's 1-digit variant
/// needs `special_limbs == levels`; `t`-digit needs `ceil(levels/t)`).
#[derive(Debug, Clone, PartialEq)]
pub struct CkksParams {
    pub(crate) n: usize,
    pub(crate) levels: usize,
    pub(crate) special_limbs: usize,
    pub(crate) limb_bits: u32,
    pub(crate) scale_bits: u32,
    pub(crate) scale_rel_tolerance: f64,
}

impl CkksParams {
    /// Starts building a parameter set.
    pub fn builder() -> CkksParamsBuilder {
        CkksParamsBuilder::default()
    }

    /// Ring degree `N`.
    pub fn ring_degree(&self) -> usize {
        self.n
    }

    /// Number of plaintext slots (`N/2`).
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// Maximum multiplicative budget `L` (number of ciphertext moduli).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of special (keyswitching) moduli.
    pub fn special_limbs(&self) -> usize {
        self.special_limbs
    }

    /// Bit width of each RNS modulus (the paper's hardware uses 28).
    pub fn limb_bits(&self) -> u32 {
        self.limb_bits
    }

    /// Default encoding scale `2^scale_bits`.
    pub fn scale(&self) -> f64 {
        2f64.powi(self.scale_bits as i32)
    }

    /// Maximum relative deviation two scales may have and still be treated
    /// as equal by addition-family operations (default `1e-6`). Operations
    /// exceeding it fail with
    /// [`FheError::ScaleMismatch`](crate::FheError::ScaleMismatch).
    pub fn scale_rel_tolerance(&self) -> f64 {
        self.scale_rel_tolerance
    }

    /// Total `log2(QP)` in bits (levels + special limbs), the quantity the
    /// security model constrains.
    pub fn log_qp(&self) -> u32 {
        (self.levels + self.special_limbs) as u32 * self.limb_bits
    }

    /// Bytes per ciphertext at level `level`, using the hardware's
    /// `limb_bits`-bit packing (2 polynomials x level limbs x N coefficients).
    pub fn ciphertext_bytes(&self, level: usize) -> usize {
        2 * level * self.n * self.limb_bits as usize / 8
    }
}

/// Builder for [`CkksParams`].
#[derive(Debug, Clone, Default)]
pub struct CkksParamsBuilder {
    n: Option<usize>,
    levels: Option<usize>,
    special_limbs: Option<usize>,
    limb_bits: Option<u32>,
    scale_bits: Option<u32>,
    scale_rel_tolerance: Option<f64>,
}

/// Error from parameter validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamsError(pub(crate) String);

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CKKS parameters: {}", self.0)
    }
}

impl std::error::Error for ParamsError {}

impl CkksParamsBuilder {
    /// Sets the ring degree `N` (power of two, >= 8).
    pub fn ring_degree(mut self, n: usize) -> Self {
        self.n = Some(n);
        self
    }

    /// Sets the number of ciphertext moduli (the multiplicative budget).
    pub fn levels(mut self, l: usize) -> Self {
        self.levels = Some(l);
        self
    }

    /// Sets the number of special keyswitching moduli.
    pub fn special_limbs(mut self, k: usize) -> Self {
        self.special_limbs = Some(k);
        self
    }

    /// Sets the RNS modulus width in bits (8..=59).
    pub fn limb_bits(mut self, bits: u32) -> Self {
        self.limb_bits = Some(bits);
        self
    }

    /// Sets the default encoding scale to `2^bits`.
    pub fn scale_bits(mut self, bits: u32) -> Self {
        self.scale_bits = Some(bits);
        self
    }

    /// Sets the relative tolerance under which two scales are treated as
    /// equal (default `1e-6`; must be in `(0, 1)`).
    pub fn scale_rel_tolerance(mut self, tol: f64) -> Self {
        self.scale_rel_tolerance = Some(tol);
        self
    }

    /// Validates and builds the parameter set.
    ///
    /// # Errors
    ///
    /// Returns an error when a field is missing or out of range.
    pub fn build(self) -> Result<CkksParams, ParamsError> {
        let n = self.n.ok_or_else(|| ParamsError("ring_degree not set".into()))?;
        let levels = self.levels.ok_or_else(|| ParamsError("levels not set".into()))?;
        let special_limbs = self.special_limbs.unwrap_or(levels);
        let limb_bits = self.limb_bits.unwrap_or(28);
        let scale_bits = self.scale_bits.unwrap_or(limb_bits);
        if !n.is_power_of_two() || n < 8 {
            return Err(ParamsError(format!(
                "ring degree must be a power of two >= 8, got {n}"
            )));
        }
        if levels == 0 {
            return Err(ParamsError("levels must be >= 1".into()));
        }
        if !(8..=59).contains(&limb_bits) {
            return Err(ParamsError(format!(
                "limb_bits must be in [8, 59], got {limb_bits}"
            )));
        }
        if scale_bits as usize >= 2 * limb_bits as usize {
            return Err(ParamsError(
                "scale_bits must be below twice the limb width".into(),
            ));
        }
        let scale_rel_tolerance = self.scale_rel_tolerance.unwrap_or(1e-6);
        if !(scale_rel_tolerance > 0.0 && scale_rel_tolerance < 1.0) {
            return Err(ParamsError(format!(
                "scale_rel_tolerance must be in (0, 1), got {scale_rel_tolerance}"
            )));
        }
        Ok(CkksParams {
            n,
            levels,
            special_limbs,
            limb_bits,
            scale_bits,
            scale_rel_tolerance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let p = CkksParams::builder()
            .ring_degree(64)
            .levels(4)
            .build()
            .unwrap();
        assert_eq!(p.special_limbs(), 4);
        assert_eq!(p.limb_bits(), 28);
        assert_eq!(p.slots(), 32);
        assert_eq!(p.log_qp(), 8 * 28);
        assert_eq!(p.scale_rel_tolerance(), 1e-6);
    }

    #[test]
    fn scale_tolerance_is_configurable_and_validated() {
        let p = CkksParams::builder()
            .ring_degree(64)
            .levels(2)
            .scale_rel_tolerance(1e-3)
            .build()
            .unwrap();
        assert_eq!(p.scale_rel_tolerance(), 1e-3);
        for bad in [0.0, -1e-6, 1.0, f64::NAN] {
            assert!(
                CkksParams::builder()
                    .ring_degree(64)
                    .levels(2)
                    .scale_rel_tolerance(bad)
                    .build()
                    .is_err(),
                "tolerance {bad} must be rejected"
            );
        }
    }

    #[test]
    fn ciphertext_bytes_matches_paper_scale() {
        // N=64K, L=60, 28-bit words: ~26.9 MB per ciphertext (Sec. 6 says
        // "each ciphertext is 26 MB").
        let p = CkksParams::builder()
            .ring_degree(1 << 16)
            .levels(60)
            .special_limbs(30)
            .build()
            .unwrap();
        let mb = p.ciphertext_bytes(60) as f64 / (1024.0 * 1024.0);
        assert!((26.0..28.0).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert!(CkksParams::builder().levels(2).build().is_err());
        assert!(CkksParams::builder()
            .ring_degree(100)
            .levels(2)
            .build()
            .is_err());
        assert!(CkksParams::builder()
            .ring_degree(64)
            .levels(0)
            .build()
            .is_err());
        assert!(CkksParams::builder()
            .ring_degree(64)
            .levels(2)
            .limb_bits(62)
            .build()
            .is_err());
        assert!(CkksParams::builder()
            .ring_degree(64)
            .levels(2)
            .limb_bits(30)
            .scale_bits(60)
            .build()
            .is_err());
    }
}
