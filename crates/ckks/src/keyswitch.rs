//! Keyswitching: standard and boosted (Sec. 3, Listing 1).
//!
//! Keyswitching re-encrypts a polynomial `c` that is implicitly multiplied
//! by some other secret `s'` (e.g. `s^2` after a tensor product, or `σ(s)`
//! after an automorphism) back under the original secret `s`. It dominates
//! FHE runtime — "in practice over 90% of all operations" (Sec. 2.2) — and
//! its algorithm choice drives CraterLake's entire design.
//!
//! Two algorithms are implemented behind one interface:
//!
//! - **Standard** ([`KeySwitchKind::Standard`]): per-limb digit
//!   decomposition over `Q` only. `L^2` NTT cost, `O(L^2)`-sized hints; the
//!   algorithm F1 was optimized for. Efficient only at small `L`.
//! - **Boosted** ([`KeySwitchKind::Boosted`]): the Gentry-Halevi-Smart
//!   "hybrid" algorithm with `t` digits and special moduli `P`. Expands the
//!   input to base `Q·P` via fast base conversion, applies a hint that is
//!   only `t+1` ciphertexts big, and divides by `P`. `O(L)` NTTs.

use cl_rns::{mod_down_ntt, Basis, RnsPoly};
use rand::Rng;
use rayon::prelude::*;

use crate::error::{FheError, FheResult};
use crate::noise::SIGMA;
use crate::{CkksContext, KeySwitchKey, SecretKey};

/// Which keyswitching algorithm to use (and, for boosted, how many digits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySwitchKind {
    /// Standard RNS keyswitching: one digit per limb, a single special
    /// modulus.
    Standard,
    /// Boosted keyswitching with `digits` digits (Sec. 3.1). `digits = 1`
    /// is the most efficient variant; higher digit counts trade hint size
    /// for a smaller special-modulus footprint (better security at a given
    /// `log QP`).
    Boosted {
        /// Number of digits `t >= 1`.
        digits: usize,
    },
}

impl CkksContext {
    /// Partition of the full modulus chain into digit limb-groups for the
    /// given keyswitch kind.
    fn digit_partition(&self, kind: KeySwitchKind) -> Vec<Vec<u32>> {
        let l_max = self.params().levels();
        match kind {
            KeySwitchKind::Standard => {
                assert!(
                    self.params().special_limbs() >= 1,
                    "standard keyswitching needs 1 special limb (its rescaling modulus), have 0"
                );
                (0..l_max as u32).map(|i| vec![i]).collect()
            }
            KeySwitchKind::Boosted { digits } => {
                assert!(digits >= 1, "digit count must be >= 1");
                let alpha = l_max.div_ceil(digits);
                assert!(
                    self.params().special_limbs() >= alpha,
                    "boosted keyswitching with {digits} digits needs {alpha} special limbs, \
                     have {}",
                    self.params().special_limbs()
                );
                (0..l_max)
                    .step_by(alpha)
                    .map(|start| (start as u32..(start + alpha).min(l_max) as u32).collect())
                    .collect()
            }
        }
    }

    /// Number of special limbs a keyswitch kind uses.
    pub(crate) fn special_for(&self, kind: KeySwitchKind) -> usize {
        match kind {
            // Standard RNS keyswitching uses a single rescaling modulus
            // (this matches the paper's standard-keyswitch cost accounting:
            // L digits x (L+1)-limb hints ≈ 2L^2 N words, L^2 NTTs).
            KeySwitchKind::Standard => 1,
            KeySwitchKind::Boosted { digits } => self.params().levels().div_ceil(digits),
        }
    }

    /// Generates a keyswitch key (hint) that moves ciphertexts from secret
    /// `s_prime` to secret `sk`.
    ///
    /// The pseudo-random halves are derived from `seed` so they never need
    /// to be stored or transferred (the KSHGen optimization).
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not provide enough special limbs for the
    /// requested digit count.
    pub fn keyswitch_keygen<R: Rng + ?Sized>(
        &self,
        s_prime: &RnsPoly,
        sk: &SecretKey,
        kind: KeySwitchKind,
        rng: &mut R,
    ) -> KeySwitchKey {
        self.keyswitch_keygen_with_error_scale(s_prime, sk, kind, 1, rng)
    }

    /// Like [`CkksContext::keyswitch_keygen`], with the hint errors scaled
    /// by `error_scale`. BGV requires hints whose noise is a multiple of
    /// the plaintext modulus `t` so keyswitching stays exact mod `t`; such
    /// hints remain valid for CKKS (the noise is merely `t` times larger).
    pub fn keyswitch_keygen_with_error_scale<R: Rng + ?Sized>(
        &self,
        s_prime: &RnsPoly,
        sk: &SecretKey,
        kind: KeySwitchKind,
        error_scale: u64,
        rng: &mut R,
    ) -> KeySwitchKey {
        let rns = self.rns();
        let digit_limbs = self.digit_partition(kind);
        let special = self.special_for(kind);
        let key_basis = if special == 0 {
            rns.q_basis(self.params().levels())
        } else {
            rns.q_basis(self.params().levels())
                .union(&rns.p_basis(special))
        };
        let s = rns.restrict(&sk.s, &key_basis);
        let s_p = rns.restrict(s_prime, &key_basis);
        let seed: u64 = rng.gen();
        let mut elems = Vec::with_capacity(digit_limbs.len());
        for (d, limbs) in digit_limbs.iter().enumerate() {
            // Pseudo-random half from the seed (KSHGen).
            let k1 = prandom_poly(rns, &key_basis, seed, d as u64);
            let mut e = rns.sample_error(&key_basis, rng);
            rns.to_ntt(&mut e);
            if error_scale != 1 {
                e = rns.scalar_mul(&e, error_scale);
            }
            // k0 = -k1*s + e + w_d * s_prime, where w_d is P mod q_i on the
            // digit's limbs and 0 elsewhere (P = 1 for standard keyswitching,
            // where w_d is the CRT indicator itself).
            let w: Vec<u64> = key_basis
                .0
                .iter()
                .map(|&limb| {
                    if limbs.contains(&limb) {
                        let m = rns.modulus(limb);
                        let mut p_mod = 1u64;
                        for k in 0..special {
                            let pl = rns.p_basis(special).0[k];
                            p_mod = m.mul(p_mod, m.reduce(rns.modulus_value(pl)));
                        }
                        p_mod
                    } else {
                        0
                    }
                })
                .collect();
            let mut k0 = rns.neg(&rns.mul(&k1, &s));
            rns.add_assign(&mut k0, &e);
            let payload = rns.scalar_mul_per_limb(&s_p, &w);
            rns.add_assign(&mut k0, &payload);
            elems.push((k0, k1));
        }
        let mut key = KeySwitchKey {
            kind,
            elems,
            digit_limbs,
            seed,
            error_bits: (SIGMA * error_scale as f64).log2(),
            digest: 0,
        };
        key.digest = key.compute_digest();
        key
    }

    /// Regenerates the pseudo-random half of digit `d` of a keyswitch key
    /// from its seed — the operation the KSHGen unit performs on the fly.
    pub fn regenerate_prandom_half(&self, ksk: &KeySwitchKey, d: usize) -> RnsPoly {
        let basis = ksk.elems[d].1.basis().clone();
        prandom_poly(self.rns(), &basis, ksk.seed, d as u64)
    }

    /// Fallible keyswitch of a single polynomial `c` (NTT form, level-`L`
    /// basis), returning the pair `(ks0, ks1)` such that
    /// `ks0 + ks1·s ≈ c·s'`.
    ///
    /// This is Listing 1 of the paper (for the boosted kinds).
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] when `c` is not in NTT form or not over
    /// a prefix of the ciphertext-modulus chain;
    /// [`FheError::CorruptKey`] when the hint fails its integrity check
    /// under [`crate::GuardrailPolicy::Strict`].
    pub fn try_keyswitch(
        &self,
        c: &RnsPoly,
        ksk: &KeySwitchKey,
    ) -> FheResult<(RnsPoly, RnsPoly)> {
        let _span = cl_trace::span("keyswitch");
        self.guard_key("keyswitch", ksk)?;
        let dec = self.hoist_impl("keyswitch", c, ksk.kind)?;
        let (acc0, acc1) = dec.inner_product(self, None, ksk);
        Ok(dec.mod_down_pair(self, acc0, acc1))
    }

    /// Phase one of keyswitching, split out so it can be *hoisted*: digit
    /// decomposition plus ModUp base extension of `c` (NTT form, level-`L`
    /// prefix basis). The result depends only on the polynomial and the
    /// keyswitch kind — not on which key is applied — so one decomposition
    /// can feed many [`HoistedDecomposition::apply_rotation`] calls.
    ///
    /// This is Listing 1, lines 1-3, amortized the way CraterLake amortizes
    /// boosted keyswitching across the BSGS rotations of its bootstrapping
    /// linear transforms (Sec. 6).
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] when `c` is not in NTT form or not over
    /// a prefix of the ciphertext-modulus chain.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not provide enough special limbs for
    /// `kind` (the same precondition as key generation).
    pub fn try_hoist(
        &self,
        c: &RnsPoly,
        kind: KeySwitchKind,
    ) -> FheResult<HoistedDecomposition> {
        self.hoist_impl("hoist", c, kind)
    }

    /// [`CkksContext::try_hoist`] with the caller's operation name on error
    /// reports.
    pub(crate) fn hoist_impl(
        &self,
        op: &'static str,
        c: &RnsPoly,
        kind: KeySwitchKind,
    ) -> FheResult<HoistedDecomposition> {
        if !c.ntt_form() {
            return Err(FheError::InvalidParams {
                op,
                reason: "input must be in NTT form".into(),
            });
        }
        let rns = self.rns();
        let level = c.num_limbs();
        let qb = rns.q_basis(level);
        if c.basis() != &qb {
            return Err(FheError::InvalidParams {
                op,
                reason: format!(
                    "input basis {:?} is not the q_1..q_{level} prefix",
                    c.basis()
                ),
            });
        }
        let digit_limbs = self.digit_partition(kind);
        let special = self.special_for(kind);
        let target = if special == 0 {
            qb.clone()
        } else {
            qb.union(&rns.p_basis(special))
        };
        let mut c_coeff = c.clone();
        rns.from_ntt(&mut c_coeff);
        // ModUp each digit in parallel: every digit's restrict + base
        // conversion + NTT is independent of the others (the CraterLake
        // schedule overlaps them across functional units the same way).
        let digits: Vec<Option<RnsPoly>> = (0..digit_limbs.len())
            .into_par_iter()
            .map(|d| {
                let limbs = &digit_limbs[d];
                let present: Vec<u32> =
                    limbs.iter().copied().filter(|&l| (l as usize) < level).collect();
                if present.is_empty() {
                    return None;
                }
                let digit_basis = Basis(present.clone());
                let ext_basis = Basis(
                    target
                        .0
                        .iter()
                        .copied()
                        .filter(|l| !present.contains(l))
                        .collect(),
                );
                let c_d = rns.restrict(&c_coeff, &digit_basis);
                // ModUp: fast base conversion to the rest of the target basis
                // (this is the changeRNSBase of Listing 1, line 3). Only the
                // converted extension limbs need a forward NTT: the digit's
                // own limbs are copied from the original NTT-form input —
                // the INTT→NTT roundtrip is exact, so this is bit-identical
                // and brings the ModUp NTT count down to the paper's t·L.
                let mut c_full = rns.zero(&target);
                if !ext_basis.is_empty() {
                    let conv = self.converter(&digit_basis, &ext_basis);
                    let mut c_ext = conv.convert(rns, &c_d);
                    rns.to_ntt(&mut c_ext);
                    for (pos, &limb) in target.0.iter().enumerate() {
                        let src = if digit_basis.0.contains(&limb) {
                            let k = qb.0.iter().position(|&l| l == limb).expect(
                                "every digit limb lies in the level-L prefix basis",
                            );
                            c.limb(k)
                        } else {
                            let k = ext_basis.0.iter().position(|&l| l == limb).expect(
                                "target basis is the disjoint union of digit and extension bases",
                            );
                            c_ext.limb(k)
                        };
                        c_full.limb_mut(pos).copy_from_slice(src);
                    }
                } else {
                    for (pos, &limb) in target.0.iter().enumerate() {
                        let k = qb
                            .0
                            .iter()
                            .position(|&l| l == limb)
                            .expect("with no extension basis the digit basis covers the target");
                        c_full.limb_mut(pos).copy_from_slice(c.limb(k));
                    }
                }
                c_full.set_ntt_form(true);
                Some(c_full)
            })
            .collect();
        Ok(HoistedDecomposition {
            kind,
            level,
            special,
            target,
            digits,
        })
    }

    /// Applies a keyswitch to a single polynomial (panicking twin of
    /// [`CkksContext::try_keyswitch`]).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not in NTT form or not over a prefix of the
    /// ciphertext-modulus chain.
    #[must_use]
    pub fn keyswitch(&self, c: &RnsPoly, ksk: &KeySwitchKey) -> (RnsPoly, RnsPoly) {
        self.try_keyswitch(c, ksk)
            .unwrap_or_else(|e| panic!("keyswitch: {e}"))
    }

    /// Generates a relinearization key (keyswitch key for `s^2 → s`).
    pub fn relin_keygen<R: Rng + ?Sized>(
        &self,
        sk: &SecretKey,
        kind: KeySwitchKind,
        rng: &mut R,
    ) -> KeySwitchKey {
        let rns = self.rns();
        let s2 = rns.mul(&sk.s, &sk.s);
        self.keyswitch_keygen(&s2, sk, kind, rng)
    }

    /// Generates a rotation key for `steps` slots (keyswitch key for
    /// `σ_g(s) → s` with `g = 5^steps mod 2N`).
    pub fn rotation_keygen<R: Rng + ?Sized>(
        &self,
        sk: &SecretKey,
        steps: i64,
        kind: KeySwitchKind,
        rng: &mut R,
    ) -> KeySwitchKey {
        let g = cl_math::galois_element_for_rotation(steps, self.params().ring_degree());
        let s_rot = self.rns().apply_automorphism(&sk.s, g);
        self.keyswitch_keygen(&s_rot, sk, kind, rng)
    }

    /// Generates a conjugation key (keyswitch key for `σ_{2N-1}(s) → s`).
    pub fn conjugation_keygen<R: Rng + ?Sized>(
        &self,
        sk: &SecretKey,
        kind: KeySwitchKind,
        rng: &mut R,
    ) -> KeySwitchKey {
        let g = cl_math::galois_element_conjugate(self.params().ring_degree());
        let s_conj = self.rns().apply_automorphism(&sk.s, g);
        self.keyswitch_keygen(&s_conj, sk, kind, rng)
    }

}

/// Phase one of the two-phase keyswitch: the digit decomposition and ModUp
/// base extension of one polynomial, reusable across many keyswitch
/// applications (*hoisting*).
///
/// Validity of rotating *after* decomposition: an automorphism `σ` is a
/// ring automorphism of `R_{QP}` and each extended digit represents
/// `x_d + α·Q_d` as a ring element, so `σ(x_d + α·Q_d) = σ(x_d) + σ(α)·Q_d`
/// — still the digit value plus a multiple of `Q_d`, which is exactly the
/// ambiguity class the hint construction and the closing ModDown absorb.
/// The noise bound is unchanged because `σ` permutes coefficients without
/// growing them. In the NTT domain `σ` is a pure index permutation, fused
/// into the hint inner product as a gather
/// ([`cl_rns::RnsContext::mul_acc_superset_automorph`]).
///
/// Obtain one via [`CkksContext::try_hoist`]; apply it with
/// [`HoistedDecomposition::apply`] (plain keyswitch) or
/// [`HoistedDecomposition::apply_rotation`] (rotation keyswitch with the
/// automorphism applied per-limb to the already-decomposed digits).
#[derive(Debug, Clone)]
pub struct HoistedDecomposition {
    kind: KeySwitchKind,
    level: usize,
    special: usize,
    target: Basis,
    /// ModUp'd digit polynomials over `target`, NTT form; `None` for
    /// digits whose limbs all lie above `level`.
    digits: Vec<Option<RnsPoly>>,
}

impl HoistedDecomposition {
    /// The keyswitch kind this decomposition was computed for.
    pub fn kind(&self) -> KeySwitchKind {
        self.kind
    }

    /// The level (limb count) of the decomposed polynomial.
    pub fn level(&self) -> usize {
        self.level
    }

    fn check_key(&self, op: &'static str, ksk: &KeySwitchKey) -> FheResult<()> {
        if ksk.kind != self.kind || ksk.digit_limbs.len() != self.digits.len() {
            return Err(FheError::InvalidParams {
                op,
                reason: format!(
                    "keyswitch key kind {:?} does not match the hoisted decomposition kind {:?}",
                    ksk.kind, self.kind
                ),
            });
        }
        Ok(())
    }

    /// Hint inner product over the extended basis (Listing 1, line 6),
    /// optionally with `σ_galois` fused onto the digits. Accumulation is
    /// serial in digit order so the result is bit-identical at any thread
    /// count; the limb loops inside each `mul_acc` kernel still run on the
    /// worker pool.
    fn inner_product(
        &self,
        ctx: &CkksContext,
        galois: Option<u64>,
        ksk: &KeySwitchKey,
    ) -> (RnsPoly, RnsPoly) {
        let rns = ctx.rns();
        let mut acc0 = rns.zero(&self.target);
        acc0.set_ntt_form(true);
        let mut acc1 = acc0.clone();
        for (d, digit) in self.digits.iter().enumerate() {
            let Some(c_full) = digit else { continue };
            rns.mul_acc_pair_superset(
                &mut acc0,
                &mut acc1,
                c_full,
                galois,
                &ksk.elems[d].0,
                &ksk.elems[d].1,
            );
        }
        (acc0, acc1)
    }

    /// Closing ModDown of both accumulators (Listing 1, lines 7-10),
    /// entirely in the NTT domain.
    pub(crate) fn mod_down_pair(
        &self,
        ctx: &CkksContext,
        acc0: RnsPoly,
        acc1: RnsPoly,
    ) -> (RnsPoly, RnsPoly) {
        if self.special == 0 {
            return (acc0, acc1);
        }
        let rns = ctx.rns();
        let qb = rns.q_basis(self.level);
        let pb = rns.p_basis(self.special);
        let conv = ctx.converter(&pb, &qb);
        let ks0 = mod_down_ntt(rns, &acc0, &qb, &pb, &conv);
        let ks1 = mod_down_ntt(rns, &acc1, &qb, &pb, &conv);
        (ks0, ks1)
    }

    /// Phase two, no automorphism: hint inner product plus the single
    /// closing ModDown. Bit-identical to [`CkksContext::try_keyswitch`] on
    /// the same polynomial.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] when the key's kind does not match the
    /// decomposition; [`FheError::CorruptKey`] under
    /// [`crate::GuardrailPolicy::Strict`] for a tampered hint.
    pub fn apply(
        &self,
        ctx: &CkksContext,
        ksk: &KeySwitchKey,
    ) -> FheResult<(RnsPoly, RnsPoly)> {
        self.apply_impl(ctx, "keyswitch_hoisted", None, ksk)
    }

    /// Phase two for a rotation by `k` slots: per-limb automorphism on the
    /// already-decomposed digits (a gather fused into the inner product),
    /// then the single closing ModDown. Returns the keyswitched pair for
    /// `σ(c)`; the caller adds `σ(c0)` separately.
    ///
    /// # Errors
    ///
    /// Same contract as [`HoistedDecomposition::apply`].
    pub fn apply_rotation(
        &self,
        ctx: &CkksContext,
        k: i64,
        rot_key: &KeySwitchKey,
    ) -> FheResult<(RnsPoly, RnsPoly)> {
        let g = cl_math::galois_element_for_rotation(k, ctx.params().ring_degree());
        self.apply_galois(ctx, g, rot_key)
    }

    /// Phase two for an arbitrary Galois element (rotations and
    /// conjugation).
    ///
    /// # Errors
    ///
    /// Same contract as [`HoistedDecomposition::apply`].
    pub fn apply_galois(
        &self,
        ctx: &CkksContext,
        galois: u64,
        ksk: &KeySwitchKey,
    ) -> FheResult<(RnsPoly, RnsPoly)> {
        self.apply_impl(ctx, "keyswitch_hoisted", Some(galois), ksk)
    }

    fn apply_impl(
        &self,
        ctx: &CkksContext,
        op: &'static str,
        galois: Option<u64>,
        ksk: &KeySwitchKey,
    ) -> FheResult<(RnsPoly, RnsPoly)> {
        ctx.guard_key(op, ksk)?;
        self.check_key(op, ksk)?;
        let (acc0, acc1) = self.inner_product(ctx, galois, ksk);
        Ok(self.mod_down_pair(ctx, acc0, acc1))
    }

    /// Phase two *without* the closing ModDown: returns the hint inner
    /// product accumulators over the extended basis `Q·P`, still scaled by
    /// `P`. Double hoisting sums many of these (ModDown is linear up to the
    /// ±1 conversion rounding, which the noise model's rounding floor
    /// already covers) and pays one ModDown for the whole sum.
    pub(crate) fn apply_galois_ext(
        &self,
        ctx: &CkksContext,
        galois: u64,
        ksk: &KeySwitchKey,
    ) -> FheResult<(RnsPoly, RnsPoly)> {
        ctx.guard_key("rotate_sum", ksk)?;
        self.check_key("rotate_sum", ksk)?;
        Ok(self.inner_product(ctx, Some(galois), ksk))
    }
}

/// Deterministic uniform polynomial from `(seed, digit)` over `basis`, NTT
/// form — the pseudo-random hint half.
///
/// Every consumer of a hint seed funnels through here — keygen, the
/// serialization loader, and lazy hot-cache expansion — so they all agree on
/// the generator: per-limb splitmix64 counter streams reduced through the
/// vectorized [`cl_math::Modulus::reduce_raw_slice`] backend kernel
/// ([`cl_rns::RnsContext::sample_uniform_seeded`]). The expansion is
/// bit-identical across backends and thread counts, and each call records a
/// `hint_regen` pass per limb in `cl-trace`.
pub(crate) fn prandom_poly(
    rns: &cl_rns::RnsContext,
    basis: &Basis,
    seed: u64,
    digit: u64,
) -> RnsPoly {
    rns.sample_uniform_seeded(basis, seed, digit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CkksParams;
    use rand::SeedableRng;

    fn ctx(levels: usize, special: usize) -> CkksContext {
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(levels)
            .special_limbs(special)
            .limb_bits(40)
            .scale_bits(32)
            .build()
            .unwrap();
        CkksContext::new(params).unwrap()
    }

    /// Checks that keyswitching a polynomial known to equal `d2` (implicitly
    /// multiplied by s') produces a valid encryption of `d2*s'` under `s`.
    fn check_keyswitch(kind: KeySwitchKind, levels: usize, special: usize) {
        let c = ctx(levels, special);
        let rns = c.rns();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let sk = c.keygen(&mut rng);
        // s' = an independent ternary secret.
        let s_prime = {
            let basis = c.full_basis();
            let mut s = rns.sample_ternary(&basis, &mut rng);
            rns.to_ntt(&mut s);
            s
        };
        let ksk = c.keyswitch_keygen(&s_prime, &sk, kind, &mut rng);
        // A small "message-like" polynomial c (bounded coefficients).
        let qb = rns.q_basis(levels);
        let signed: Vec<i64> = (0..c.params().ring_degree())
            .map(|i| ((i as i64 * 37 + 11) % 1000) - 500)
            .collect();
        let mut msg = rns.from_signed_coeffs(&signed, &qb);
        rns.to_ntt(&mut msg);
        let (ks0, ks1) = c.keyswitch(&msg, &ksk);
        // Decrypt: ks0 + ks1*s should equal msg*s' up to small noise.
        let s = rns.restrict(&sk.s, &qb);
        let sp = rns.restrict(&s_prime, &qb);
        let mut got = rns.mul(&ks1, &s);
        rns.add_assign(&mut got, &ks0);
        let expect = rns.mul(&msg, &sp);
        let mut diff = rns.sub(&got, &expect);
        rns.from_ntt(&mut diff);
        // The noise must be small relative to Q: reconstruct the exact
        // centered magnitude of each coefficient and compare against Q.
        let moduli: Vec<u64> = qb.0.iter().map(|&l| rns.modulus_value(l)).collect();
        let q_big = cl_math::BigUint::product(&moduli);
        let q_f64 = q_big.to_f64();
        let mut max_noise = 0f64;
        for i in 0..c.params().ring_degree() {
            let residues: Vec<u64> = (0..diff.num_limbs()).map(|k| diff.limb(k)[i]).collect();
            let big = cl_math::BigUint::crt_combine(&residues, &moduli);
            let (_, mag) = big.centered(&q_big);
            max_noise = max_noise.max(mag.to_f64());
        }
        assert!(
            max_noise < q_f64 / 2f64.powi(50),
            "keyswitch noise too large for {kind:?}: {max_noise:e} vs Q={q_f64:e}"
        );
    }

    #[test]
    fn boosted_1digit_keyswitch_is_correct() {
        check_keyswitch(KeySwitchKind::Boosted { digits: 1 }, 3, 3);
    }

    #[test]
    fn boosted_2digit_keyswitch_is_correct() {
        check_keyswitch(KeySwitchKind::Boosted { digits: 2 }, 4, 2);
    }

    #[test]
    fn boosted_3digit_keyswitch_is_correct() {
        check_keyswitch(KeySwitchKind::Boosted { digits: 3 }, 6, 2);
    }

    #[test]
    fn standard_keyswitch_is_correct() {
        check_keyswitch(KeySwitchKind::Standard, 3, 1);
    }

    #[test]
    fn keyswitch_below_max_level() {
        // Keys are generated once at max level but must work lower.
        let c = ctx(4, 4);
        let rns = c.rns();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sk = c.keygen(&mut rng);
        let s_prime = {
            let mut s = rns.sample_ternary(&c.full_basis(), &mut rng);
            rns.to_ntt(&mut s);
            s
        };
        let ksk = c.keyswitch_keygen(&s_prime, &sk, KeySwitchKind::Boosted { digits: 2 }, &mut rng);
        for level in 1..=4 {
            let qb = rns.q_basis(level);
            let signed: Vec<i64> = (0..128).map(|i| (i % 17) - 8).collect();
            let mut msg = rns.from_signed_coeffs(&signed, &qb);
            rns.to_ntt(&mut msg);
            let (ks0, ks1) = c.keyswitch(&msg, &ksk);
            let s = rns.restrict(&sk.s, &qb);
            let sp = rns.restrict(&s_prime, &qb);
            let mut got = rns.mul(&ks1, &s);
            rns.add_assign(&mut got, &ks0);
            let expect = rns.mul(&msg, &sp);
            let mut diff = rns.sub(&got, &expect);
            rns.from_ntt(&mut diff);
            let m0 = rns.modulus(0);
            let max_noise = diff
                .limb(0)
                .iter()
                .map(|&x| m0.lift_centered(x).abs())
                .max()
                .unwrap();
            assert!(max_noise < 1 << 30, "level {level}: noise {max_noise}");
        }
    }

    #[test]
    fn prandom_half_regenerates_exactly() {
        let c = ctx(3, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let sk = c.keygen(&mut rng);
        let ksk = c.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        for d in 0..ksk.num_digits() {
            let regen = c.regenerate_prandom_half(&ksk, d);
            assert_eq!(&regen, &ksk.elems[d].1, "digit {d}");
        }
        // Seeded storage is half of full storage.
        assert_eq!(ksk.num_words_seeded() * 2, ksk.num_words_full());
    }

    #[test]
    fn hint_sizes_match_paper_ratios() {
        // Sec. 3.1: with 1-digit keyswitching each KSH is the size of 2
        // ciphertexts; with t digits, t+1 ciphertexts.
        for digits in 1..=3usize {
            let levels = 6;
            let c = ctx(levels, levels.div_ceil(digits));
            let mut rng = rand::rngs::StdRng::seed_from_u64(17);
            let sk = c.keygen(&mut rng);
            let ksk = c.relin_keygen(&sk, KeySwitchKind::Boosted { digits }, &mut rng);
            let ct_words = 2 * levels * c.params().ring_degree();
            let ratio = ksk.num_words_full() as f64 / ct_words as f64;
            // t digits x 2 polys x (L + ceil(L/t)) limbs over 2 x L limbs.
            let expect = (digits as f64)
                * (levels as f64 + (levels as f64 / digits as f64).ceil())
                / levels as f64;
            assert!(
                (ratio - expect).abs() < 1e-9,
                "digits={digits}: ratio {ratio} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "special limbs")]
    fn boosted_needs_enough_special_limbs() {
        let c = ctx(4, 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sk = c.keygen(&mut rng);
        let _ = c.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
    }
}
