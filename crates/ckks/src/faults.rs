//! Fault-injection harness (test-only).
//!
//! Deliberately corrupts ciphertexts and keyswitch hints so tests can
//! verify that the [`GuardrailPolicy::Strict`](crate::GuardrailPolicy)
//! runtime checks catch each corruption class instead of silently
//! producing garbage:
//!
//! | injected fault | detector | reported as |
//! |---|---|---|
//! | flipped limb word ([`flip_ciphertext_word`]) | residue-range scan in `validate_ciphertext` | [`FheError::CorruptCiphertext`](crate::FheError) |
//! | dropped rescale / tampered scale ([`corrupt_scale`]) | signed noise-budget threshold | [`FheError::BudgetExhausted`](crate::FheError) |
//! | corrupted hint ([`corrupt_hint_word`]) | keygen-time integrity digest | [`FheError::CorruptKey`](crate::FheError) |
//!
//! The module is compiled only for tests and under the `faults` cargo
//! feature; production builds carry none of this code.

use crate::{Ciphertext, KeySwitchKey};

/// Bit flipped into a 64-bit residue word. Bit 62 is above every modulus
/// this crate accepts (limb widths are < 62 bits), so the flipped residue
/// always lands out of range — the worst case for silent corruption, and
/// exactly what the conformance scan must catch.
pub const FLIP_MASK: u64 = 1 << 62;

/// Flips one residue word of a ciphertext polynomial in place.
///
/// `poly` selects `c0` (0) or `c1` (any other value); `limb` and `coeff`
/// address the word. Models an SEU / DRAM bit flip in the ciphertext
/// payload.
///
/// # Panics
///
/// Panics if `limb` or `coeff` is out of range.
pub fn flip_ciphertext_word(ct: &mut Ciphertext, poly: usize, limb: usize, coeff: usize) {
    let p = if poly == 0 { &mut ct.c0 } else { &mut ct.c1 };
    p.limb_mut(limb)[coeff] ^= FLIP_MASK;
}

/// Multiplies the recorded scale by `factor` without touching the payload
/// — the bookkeeping state a program is left with when a rescale is
/// dropped (the payload scale and the recorded scale agree, but both are a
/// factor `q_l` too large for the remaining modulus chain).
pub fn corrupt_scale(ct: &mut Ciphertext, factor: f64) {
    ct.scale *= factor;
}

/// Flips one residue word of a keyswitch hint in place.
///
/// `digit` selects the hint element, `half` selects `k0` (0) or `k1` (any
/// other value). The keygen-time integrity digest is deliberately NOT
/// recomputed — this models post-generation corruption (bit rot in hint
/// storage, a truncated transfer), which
/// [`KeySwitchKey::verify_integrity`] must detect.
///
/// # Panics
///
/// Panics if `digit`, `limb` or `coeff` is out of range.
pub fn corrupt_hint_word(
    ksk: &mut KeySwitchKey,
    digit: usize,
    half: usize,
    limb: usize,
    coeff: usize,
) {
    let (k0, k1) = &mut ksk.elems[digit];
    let p = if half == 0 { k0 } else { k1 };
    p.limb_mut(limb)[coeff] ^= FLIP_MASK;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CkksContext, CkksParams, FheError, GuardrailPolicy, KeySwitchKind, SecretKey};
    use rand::SeedableRng;

    fn setup(levels: usize) -> (CkksContext, SecretKey, rand::rngs::StdRng) {
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(levels)
            .special_limbs(levels)
            .limb_bits(40)
            .scale_bits(32)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let sk = ctx.keygen(&mut rng);
        (ctx, sk, rng)
    }

    const STRICT: GuardrailPolicy = GuardrailPolicy::Strict {
        min_budget_bits: 0.0,
    };

    #[test]
    fn bit_flip_in_ciphertext_is_caught_by_strict_guardrails() {
        let (mut ctx, sk, mut rng) = setup(2);
        let clean = ctx.encrypt(&ctx.encode(&[1.0, 2.0], ctx.default_scale(), 2), &sk, &mut rng);
        let mut bad = clean.clone();
        flip_ciphertext_word(&mut bad, 1, 0, 3);
        // The conformance scan pinpoints the corruption...
        assert!(matches!(
            ctx.validate_ciphertext("audit", &bad),
            Err(FheError::CorruptCiphertext { op: "audit", .. })
        ));
        // ...and under Strict every op runs it on its operands.
        ctx.set_policy(STRICT);
        match ctx.try_add(&clean, &bad) {
            Err(FheError::CorruptCiphertext { op, reason }) => {
                assert_eq!(op, "add");
                assert!(reason.contains("limb"), "reason should locate the fault: {reason}");
            }
            other => panic!("expected CorruptCiphertext, got {other:?}"),
        }
    }

    #[test]
    fn bit_flip_passes_through_under_permissive() {
        // Permissive skips conformance scans (the legacy cost model): the
        // corrupted operand clears the guard and flows into arithmetic —
        // exactly the silent-garbage failure mode the strict policy
        // exists to prevent. (The arithmetic itself is not run here: the
        // out-of-range residue would trip cl-math's debug assertions long
        // after the guardrail's chance to object has passed.)
        let (ctx, sk, mut rng) = setup(2);
        assert_eq!(ctx.policy(), GuardrailPolicy::Permissive);
        let clean = ctx.encrypt(&ctx.encode(&[1.0, 2.0], ctx.default_scale(), 2), &sk, &mut rng);
        let mut bad = clean.clone();
        flip_ciphertext_word(&mut bad, 0, 0, 0);
        assert!(ctx.guard_operands("add", &[&clean, &bad]).is_ok());
        // The corruption is real — an explicit scan still sees it.
        assert!(ctx.validate_ciphertext("audit", &bad).is_err());
    }

    #[test]
    fn flip_is_reversible_and_flips_one_word() {
        let (ctx, sk, mut rng) = setup(2);
        let clean = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
        let mut ct = clean.clone();
        flip_ciphertext_word(&mut ct, 1, 1, 7);
        assert_ne!(ct, clean);
        flip_ciphertext_word(&mut ct, 1, 1, 7);
        assert_eq!(ct, clean);
    }

    #[test]
    fn dropped_rescale_is_caught_as_budget_exhaustion() {
        // 45-bit limbs over a 30-bit scale leave ample per-level headroom,
        // so the properly rescaled pipeline keeps a comfortably positive
        // budget while the faulty one collapses.
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(3)
            .special_limbs(3)
            .limb_bits(45)
            .scale_bits(30)
            .build()
            .unwrap();
        let mut ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let sk = ctx.keygen(&mut rng);
        ctx.set_policy(STRICT);
        let rlk = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&[0.5, 0.25], ctx.default_scale(), 3), &sk, &mut rng);
        // Fault: the circuit "forgets" the rescale after a multiply. The
        // first product fits; compounding it without rescaling pushes the
        // scale past what the remaining modulus chain can represent, and
        // the budget tracker reports exhaustion instead of wrapping.
        let unrescaled = ctx.try_square(&ct, &rlk).expect("first square fits");
        match ctx.try_square(&unrescaled, &rlk) {
            Err(FheError::BudgetExhausted { op: "square", budget_bits, .. }) => {
                assert!(budget_bits < 0.0);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // The properly rescaled pipeline sails through the same guardrails.
        let rescaled = ctx.try_rescale(&unrescaled).unwrap();
        assert!(ctx.try_square(&rescaled, &rlk).is_ok());
    }

    #[test]
    fn tampered_scale_is_caught_as_budget_exhaustion() {
        let (mut ctx, sk, mut rng) = setup(2);
        ctx.set_policy(STRICT);
        let clean = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
        let mut bad = clean.clone();
        // A scale inflated by 2^50 claims far more precision than the
        // modulus chain holds; the signed budget goes deeply negative.
        corrupt_scale(&mut bad, (1u64 << 50) as f64);
        assert!(ctx.try_add(&clean, &clean).is_ok(), "clean baseline must pass");
        assert!(matches!(
            ctx.try_neg_ct(&bad).and_then(|ct| ctx.guard_budget("audit", &ct)),
            Err(FheError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn auto_rescale_policy_repairs_the_dropped_rescale_fault() {
        // scale == limb width so the auto-inserted rescales return the
        // scale to the default each time.
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(3)
            .special_limbs(3)
            .limb_bits(40)
            .scale_bits(40)
            .build()
            .unwrap();
        let mut ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let sk = ctx.keygen(&mut rng);
        ctx.set_policy(GuardrailPolicy::AutoRescale);
        let rlk = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let vals = [0.5, 0.25];
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.default_scale(), 3), &sk, &mut rng);
        // Same faulty circuit as above (no explicit rescales anywhere):
        // AutoRescale inserts them, so the chain survives and decrypts.
        let a = ctx.try_square(&ct, &rlk).unwrap();
        let b = ctx.try_square(&a, &rlk).unwrap();
        assert_eq!(b.level(), 1);
        let got = ctx.decode(&ctx.decrypt(&b, &sk), 2);
        for (g, v) in got.iter().zip(&vals) {
            let expect = v.powi(4);
            assert!((g - expect).abs() < 0.05, "{g} vs {expect}");
        }
    }

    #[test]
    fn corrupted_hint_is_caught_by_integrity_digest() {
        let (mut ctx, sk, mut rng) = setup(3);
        let rlk = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&[1.0, -1.0], ctx.default_scale(), 3), &sk, &mut rng);
        let mut bad_key = rlk.clone();
        corrupt_hint_word(&mut bad_key, 0, 0, 2, 5);
        assert!(rlk.verify_integrity());
        assert!(!bad_key.verify_integrity());
        // Permissive trusts the key (legacy behaviour): the guard waves
        // the tampered hint through...
        assert!(ctx.guard_key("mul", &bad_key).is_ok());
        // ...Strict refuses to use it.
        ctx.set_policy(STRICT);
        match ctx.try_mul(&ct, &ct, &bad_key) {
            Err(FheError::CorruptKey { op, .. }) => assert_eq!(op, "mul"),
            other => panic!("expected CorruptKey, got {other:?}"),
        }
        // The pristine key still passes the same strict checks.
        assert!(ctx.try_mul(&ct, &ct, &rlk).is_ok());
    }

    #[test]
    fn corrupted_rotation_key_is_caught_too() {
        let (mut ctx, sk, mut rng) = setup(2);
        ctx.set_policy(STRICT);
        let mut rk = ctx.rotation_keygen(&sk, 1, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&[1.0, 2.0], ctx.default_scale(), 2), &sk, &mut rng);
        assert!(ctx.try_rotate(&ct, 1, &rk).is_ok());
        corrupt_hint_word(&mut rk, 0, 1, 0, 0);
        assert!(matches!(
            ctx.try_rotate(&ct, 1, &rk),
            Err(FheError::CorruptKey { op: "rotate", .. })
        ));
    }
}
