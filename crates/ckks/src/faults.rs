//! Fault-injection harness (test-only).
//!
//! Deliberately corrupts ciphertexts and keyswitch hints so tests can
//! verify that the [`GuardrailPolicy::Strict`](crate::GuardrailPolicy)
//! runtime checks catch each corruption class instead of silently
//! producing garbage:
//!
//! | injected fault | detector | reported as |
//! |---|---|---|
//! | flipped limb word ([`flip_ciphertext_word`]) | residue-range scan in `validate_ciphertext` | [`FheError::CorruptCiphertext`](crate::FheError) |
//! | dropped rescale / tampered scale ([`corrupt_scale`]) | signed noise-budget threshold | [`FheError::BudgetExhausted`](crate::FheError) |
//! | corrupted hint ([`corrupt_hint_word`]) | keygen-time integrity digest | [`FheError::CorruptKey`](crate::FheError) |
//!
//! On top of the deterministic primitives, [`FaultPlan`] is a seeded
//! probabilistic injector for soak-style testing: intermittent bit flips at
//! a configurable per-op rate plus *kill points* that simulate a process
//! crash between ops — the fault model the cl-runtime pipeline executor's
//! checkpoint/restore loop is validated against.
//!
//! The module is compiled only for tests and under the `faults` cargo
//! feature; production builds carry none of this code.

use std::collections::{BTreeMap, BTreeSet};

use crate::{Ciphertext, KeySwitchKey};

/// Bit flipped into a 64-bit residue word. Bit 62 is above every modulus
/// this crate accepts (limb widths are < 62 bits), so the flipped residue
/// always lands out of range — the worst case for silent corruption, and
/// exactly what the conformance scan must catch.
pub const FLIP_MASK: u64 = 1 << 62;

/// Flips one residue word of a ciphertext polynomial in place.
///
/// `poly` selects `c0` (0) or `c1` (any other value); `limb` and `coeff`
/// address the word. Models an SEU / DRAM bit flip in the ciphertext
/// payload.
///
/// # Panics
///
/// Panics if `limb` or `coeff` is out of range.
pub fn flip_ciphertext_word(ct: &mut Ciphertext, poly: usize, limb: usize, coeff: usize) {
    let p = if poly == 0 { &mut ct.c0 } else { &mut ct.c1 };
    p.limb_mut(limb)[coeff] ^= FLIP_MASK;
}

/// Multiplies the recorded scale by `factor` without touching the payload
/// — the bookkeeping state a program is left with when a rescale is
/// dropped (the payload scale and the recorded scale agree, but both are a
/// factor `q_l` too large for the remaining modulus chain).
pub fn corrupt_scale(ct: &mut Ciphertext, factor: f64) {
    ct.scale *= factor;
}

/// Flips one residue word of a keyswitch hint in place.
///
/// `digit` selects the hint element, `half` selects `k0` (0) or `k1` (any
/// other value). The keygen-time integrity digest is deliberately NOT
/// recomputed — this models post-generation corruption (bit rot in hint
/// storage, a truncated transfer), which
/// [`KeySwitchKey::verify_integrity`] must detect.
///
/// # Panics
///
/// Panics if `digit`, `limb` or `coeff` is out of range.
pub fn corrupt_hint_word(
    ksk: &mut KeySwitchKey,
    digit: usize,
    half: usize,
    limb: usize,
    coeff: usize,
) {
    let (k0, k1) = &mut ksk.elems[digit];
    let p = if half == 0 { k0 } else { k1 };
    p.limb_mut(limb)[coeff] ^= FLIP_MASK;
}

/// What a [`FaultPlan`] did to the ciphertext it was consulted about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault this op.
    None,
    /// One residue word was flipped in place (an intermittent SEU).
    Flipped {
        /// `c0` (0) or `c1` (1).
        poly: usize,
        /// Limb position within the polynomial.
        limb: usize,
        /// Coefficient index within the limb.
        coeff: usize,
    },
    /// A kill point fired: the process "crashes" between ops. The caller
    /// must abandon in-memory state and resume from durable checkpoints.
    Kill,
    /// A stall point fired: the op slept past any reasonable budget (a
    /// hung worker, a wedged I/O path). A supervising watchdog should have
    /// observed the stale heartbeat while the sleep ran.
    Stalled {
        /// How long the injected hang slept, in milliseconds.
        slept_ms: u64,
    },
}

/// A seeded probabilistic fault injector.
///
/// Each call to [`FaultPlan::on_op`] advances a deterministic splitmix64
/// stream, so a given `(seed, flip_rate, kill points)` triple replays the
/// exact same fault schedule on every run — tests can assert precise
/// telemetry. The op counter is monotonic across retries: a retried op sees
/// fresh draws, so a bounded retry loop converges with probability 1 for
/// any `flip_rate < 1`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
    flip_rate: f64,
    kill_points: BTreeSet<u64>,
    stall_points: BTreeMap<u64, u64>,
    ops_seen: u64,
    injected: u64,
    kills: u64,
    stalls: u64,
}

impl FaultPlan {
    /// A plan flipping one ciphertext word per op with probability
    /// `flip_rate`, driven by `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= flip_rate < 1.0` (a rate of 1 would defeat
    /// any retry budget).
    pub fn new(seed: u64, flip_rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&flip_rate),
            "flip_rate must be in [0, 1)"
        );
        Self {
            state: seed,
            flip_rate,
            kill_points: BTreeSet::new(),
            stall_points: BTreeMap::new(),
            ops_seen: 0,
            injected: 0,
            kills: 0,
            stalls: 0,
        }
    }

    /// Adds a kill point: the `op`-th consultation (0-based, counting
    /// every retry) simulates a crash instead of running. Each kill point
    /// fires once.
    #[must_use]
    pub fn with_kill_point(mut self, op: u64) -> Self {
        self.kill_points.insert(op);
        self
    }

    /// Adds a stall point: the `op`-th consultation (0-based, counting
    /// every retry) sleeps for `millis` before returning — a hung worker
    /// whose heartbeat goes stale while the sleep runs. Each stall point
    /// fires once.
    #[must_use]
    pub fn with_stall_point(mut self, op: u64, millis: u64) -> Self {
        self.stall_points.insert(op, millis);
        self
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: tiny, seedable, and good enough for fault schedules.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Consults the plan before an op on `ct`: possibly flips one word in
    /// place, or fires a pending kill point. Returns what happened.
    pub fn on_op(&mut self, ct: &mut Ciphertext) -> FaultAction {
        let op = self.ops_seen;
        self.ops_seen += 1;
        if self.kill_points.remove(&op) {
            self.kills += 1;
            return FaultAction::Kill;
        }
        if let Some(millis) = self.stall_points.remove(&op) {
            self.stalls += 1;
            std::thread::sleep(std::time::Duration::from_millis(millis));
            return FaultAction::Stalled { slept_ms: millis };
        }
        let draw = self.next_u64() as f64 / (u64::MAX as f64 + 1.0);
        if draw >= self.flip_rate {
            return FaultAction::None;
        }
        let poly = (self.next_u64() % 2) as usize;
        let target = if poly == 0 { &ct.c0 } else { &ct.c1 };
        let limb = (self.next_u64() % target.num_limbs() as u64) as usize;
        let coeff = (self.next_u64() % target.n() as u64) as usize;
        flip_ciphertext_word(ct, poly, limb, coeff);
        self.injected += 1;
        FaultAction::Flipped { poly, limb, coeff }
    }

    /// Total consultations so far (including retried ops).
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }

    /// Number of bit flips injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Number of kill points fired so far.
    pub fn kills(&self) -> u64 {
        self.kills
    }

    /// Kill points that have not fired yet.
    pub fn pending_kills(&self) -> usize {
        self.kill_points.len()
    }

    /// Number of stall points fired so far.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Stall points that have not fired yet.
    pub fn pending_stalls(&self) -> usize {
        self.stall_points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CkksContext, CkksParams, FheError, GuardrailPolicy, KeySwitchKind, SecretKey};
    use rand::SeedableRng;

    fn setup(levels: usize) -> (CkksContext, SecretKey, rand::rngs::StdRng) {
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(levels)
            .special_limbs(levels)
            .limb_bits(40)
            .scale_bits(32)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let sk = ctx.keygen(&mut rng);
        (ctx, sk, rng)
    }

    const STRICT: GuardrailPolicy = GuardrailPolicy::Strict {
        min_budget_bits: 0.0,
    };

    #[test]
    fn bit_flip_in_ciphertext_is_caught_by_strict_guardrails() {
        let (mut ctx, sk, mut rng) = setup(2);
        let clean = ctx.encrypt(&ctx.encode(&[1.0, 2.0], ctx.default_scale(), 2), &sk, &mut rng);
        let mut bad = clean.clone();
        flip_ciphertext_word(&mut bad, 1, 0, 3);
        // The conformance scan pinpoints the corruption...
        assert!(matches!(
            ctx.validate_ciphertext("audit", &bad),
            Err(FheError::CorruptCiphertext { op: "audit", .. })
        ));
        // ...and under Strict every op runs it on its operands.
        ctx.set_policy(STRICT);
        match ctx.try_add(&clean, &bad) {
            Err(FheError::CorruptCiphertext { op, reason }) => {
                assert_eq!(op, "add");
                assert!(reason.contains("limb"), "reason should locate the fault: {reason}");
            }
            other => panic!("expected CorruptCiphertext, got {other:?}"),
        }
    }

    #[test]
    fn bit_flip_passes_through_under_permissive() {
        // Permissive skips conformance scans (the legacy cost model): the
        // corrupted operand clears the guard and flows into arithmetic —
        // exactly the silent-garbage failure mode the strict policy
        // exists to prevent. (The arithmetic itself is not run here: the
        // out-of-range residue would trip cl-math's debug assertions long
        // after the guardrail's chance to object has passed.)
        let (ctx, sk, mut rng) = setup(2);
        assert_eq!(ctx.policy(), GuardrailPolicy::Permissive);
        let clean = ctx.encrypt(&ctx.encode(&[1.0, 2.0], ctx.default_scale(), 2), &sk, &mut rng);
        let mut bad = clean.clone();
        flip_ciphertext_word(&mut bad, 0, 0, 0);
        assert!(ctx.guard_operands("add", &[&clean, &bad]).is_ok());
        // The corruption is real — an explicit scan still sees it.
        assert!(ctx.validate_ciphertext("audit", &bad).is_err());
    }

    #[test]
    fn flip_is_reversible_and_flips_one_word() {
        let (ctx, sk, mut rng) = setup(2);
        let clean = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
        let mut ct = clean.clone();
        flip_ciphertext_word(&mut ct, 1, 1, 7);
        assert_ne!(ct, clean);
        flip_ciphertext_word(&mut ct, 1, 1, 7);
        assert_eq!(ct, clean);
    }

    #[test]
    fn dropped_rescale_is_caught_as_budget_exhaustion() {
        // 45-bit limbs over a 30-bit scale leave ample per-level headroom,
        // so the properly rescaled pipeline keeps a comfortably positive
        // budget while the faulty one collapses.
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(3)
            .special_limbs(3)
            .limb_bits(45)
            .scale_bits(30)
            .build()
            .unwrap();
        let mut ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let sk = ctx.keygen(&mut rng);
        ctx.set_policy(STRICT);
        let rlk = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&[0.5, 0.25], ctx.default_scale(), 3), &sk, &mut rng);
        // Fault: the circuit "forgets" the rescale after a multiply. The
        // first product fits; compounding it without rescaling pushes the
        // scale past what the remaining modulus chain can represent, and
        // the budget tracker reports exhaustion instead of wrapping.
        let unrescaled = ctx.try_square(&ct, &rlk).expect("first square fits");
        match ctx.try_square(&unrescaled, &rlk) {
            Err(FheError::BudgetExhausted { op: "square", budget_bits, .. }) => {
                assert!(budget_bits < 0.0);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // The properly rescaled pipeline sails through the same guardrails.
        let rescaled = ctx.try_rescale(&unrescaled).unwrap();
        assert!(ctx.try_square(&rescaled, &rlk).is_ok());
    }

    #[test]
    fn tampered_scale_is_caught_as_budget_exhaustion() {
        let (mut ctx, sk, mut rng) = setup(2);
        ctx.set_policy(STRICT);
        let clean = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
        let mut bad = clean.clone();
        // A scale inflated by 2^50 claims far more precision than the
        // modulus chain holds; the signed budget goes deeply negative.
        corrupt_scale(&mut bad, (1u64 << 50) as f64);
        assert!(ctx.try_add(&clean, &clean).is_ok(), "clean baseline must pass");
        assert!(matches!(
            ctx.try_neg_ct(&bad).and_then(|ct| ctx.guard_budget("audit", &ct)),
            Err(FheError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn auto_rescale_policy_repairs_the_dropped_rescale_fault() {
        // scale == limb width so the auto-inserted rescales return the
        // scale to the default each time.
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(3)
            .special_limbs(3)
            .limb_bits(40)
            .scale_bits(40)
            .build()
            .unwrap();
        let mut ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let sk = ctx.keygen(&mut rng);
        ctx.set_policy(GuardrailPolicy::AutoRescale);
        let rlk = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let vals = [0.5, 0.25];
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.default_scale(), 3), &sk, &mut rng);
        // Same faulty circuit as above (no explicit rescales anywhere):
        // AutoRescale inserts them, so the chain survives and decrypts.
        let a = ctx.try_square(&ct, &rlk).unwrap();
        let b = ctx.try_square(&a, &rlk).unwrap();
        assert_eq!(b.level(), 1);
        let got = ctx.decode(&ctx.decrypt(&b, &sk), 2);
        for (g, v) in got.iter().zip(&vals) {
            let expect = v.powi(4);
            assert!((g - expect).abs() < 0.05, "{g} vs {expect}");
        }
    }

    #[test]
    fn corrupted_hint_is_caught_by_integrity_digest() {
        let (mut ctx, sk, mut rng) = setup(3);
        let rlk = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&[1.0, -1.0], ctx.default_scale(), 3), &sk, &mut rng);
        let mut bad_key = rlk.clone();
        corrupt_hint_word(&mut bad_key, 0, 0, 2, 5);
        assert!(rlk.verify_integrity());
        assert!(!bad_key.verify_integrity());
        // Permissive trusts the key (legacy behaviour): the guard waves
        // the tampered hint through...
        assert!(ctx.guard_key("mul", &bad_key).is_ok());
        // ...Strict refuses to use it.
        ctx.set_policy(STRICT);
        match ctx.try_mul(&ct, &ct, &bad_key) {
            Err(FheError::CorruptKey { op, .. }) => assert_eq!(op, "mul"),
            other => panic!("expected CorruptKey, got {other:?}"),
        }
        // The pristine key still passes the same strict checks.
        assert!(ctx.try_mul(&ct, &ct, &rlk).is_ok());
    }

    #[test]
    fn fault_plan_is_deterministic_and_counts_events() {
        let (ctx, sk, mut rng) = setup(2);
        let clean = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
        let run = |seed: u64| {
            let mut plan = FaultPlan::new(seed, 0.5).with_kill_point(3);
            let mut ct = clean.clone();
            let actions: Vec<FaultAction> = (0..16).map(|_| plan.on_op(&mut ct)).collect();
            (actions, plan.injected(), plan.kills(), ct)
        };
        let (a1, inj1, kills1, ct1) = run(99);
        let (a2, inj2, kills2, ct2) = run(99);
        assert_eq!(a1, a2, "same seed must replay the same schedule");
        assert_eq!((inj1, kills1), (inj2, kills2));
        assert_eq!(ct1, ct2);
        assert_eq!(a1[3], FaultAction::Kill);
        assert_eq!(kills1, 1);
        assert!(inj1 > 0, "rate 0.5 over 15 draws should flip at least once");
        assert_eq!(
            inj1,
            a1.iter()
                .filter(|a| matches!(a, FaultAction::Flipped { .. }))
                .count() as u64
        );
        let (a3, ..) = run(100);
        assert_ne!(a1, a3, "different seeds should differ");
    }

    #[test]
    fn fault_plan_flips_are_caught_by_strict_validation() {
        let (ctx, sk, mut rng) = setup(2);
        let clean = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
        let mut plan = FaultPlan::new(7, 0.999);
        let mut ct = clean.clone();
        match plan.on_op(&mut ct) {
            FaultAction::Flipped { .. } => {
                assert!(ctx.validate_ciphertext("audit", &ct).is_err());
            }
            other => panic!("rate ~1 must flip on the first op, got {other:?}"),
        }
    }

    #[test]
    fn zero_rate_plan_never_flips() {
        let (ctx, sk, mut rng) = setup(2);
        let clean = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
        let mut plan = FaultPlan::new(1, 0.0);
        let mut ct = clean.clone();
        for _ in 0..64 {
            assert_eq!(plan.on_op(&mut ct), FaultAction::None);
        }
        assert_eq!(ct, clean);
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn corrupted_rotation_key_is_caught_too() {
        let (mut ctx, sk, mut rng) = setup(2);
        ctx.set_policy(STRICT);
        let mut rk = ctx.rotation_keygen(&sk, 1, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&[1.0, 2.0], ctx.default_scale(), 2), &sk, &mut rng);
        assert!(ctx.try_rotate(&ct, 1, &rk).is_ok());
        corrupt_hint_word(&mut rk, 0, 1, 0, 0);
        assert!(matches!(
            ctx.try_rotate(&ct, 1, &rk),
            Err(FheError::CorruptKey { op: "rotate", .. })
        ));
    }
}
