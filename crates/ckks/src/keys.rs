//! Key material: secret keys, public keys, and keyswitch keys (hints) in
//! both materialized and compact (seeded) resident forms.

use cl_rns::RnsPoly;

use crate::error::{FheError, FheResult};
use crate::keyswitch::KeySwitchKind;
use crate::CkksContext;

/// A secret key: a ternary polynomial over the full modulus chain
/// (ciphertext moduli and special moduli), kept in NTT form.
#[derive(Debug, Clone)]
pub struct SecretKey {
    pub(crate) s: RnsPoly,
}

impl SecretKey {
    /// The secret polynomial (NTT form, full basis).
    pub fn poly(&self) -> &RnsPoly {
        &self.s
    }
}

/// A public encryption key `(pk0, pk1) = (-a·s + e, a)` over the full
/// ciphertext-modulus chain.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) pk0: RnsPoly,
    pub(crate) pk1: RnsPoly,
}

/// A keyswitch key — the paper's *keyswitch hint* (KSH).
///
/// For boosted keyswitching with `t` digits this is `t` pairs of
/// polynomials over the extended basis `Q·P`; for standard keyswitching it
/// is `L` pairs (one per limb) over `Q` extended by a single rescaling
/// modulus. The second element of every pair is
/// pseudo-random and is regenerated on demand from `seed` — the software
/// equivalent of the KSHGen functional unit (Sec. 5.2), which halves the
/// hint's storage and memory traffic.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    pub(crate) kind: KeySwitchKind,
    /// `(k0, k1)` per digit, NTT form, over the key basis.
    pub(crate) elems: Vec<(RnsPoly, RnsPoly)>,
    /// Ciphertext-modulus limbs covered by each digit.
    pub(crate) digit_limbs: Vec<Vec<u32>>,
    /// Seed regenerating every `k1` (the pseudo-random half).
    pub(crate) seed: u64,
    /// `log2` of the hint error magnitude (the sampler's σ times any
    /// error scaling, e.g. BGV's plaintext modulus `t`) — consumed by the
    /// analytic noise model.
    pub(crate) error_bits: f64,
    /// Integrity digest over the hint payload, computed at keygen; the
    /// strict guardrail policy re-verifies it before every keyswitch so a
    /// corrupted hint is caught instead of silently destroying the result.
    pub(crate) digest: u64,
}

impl KeySwitchKey {
    /// The keyswitching algorithm this key is for.
    pub fn kind(&self) -> KeySwitchKind {
        self.kind
    }

    /// Number of digits.
    pub fn num_digits(&self) -> usize {
        self.elems.len()
    }

    /// The seed from which the pseudo-random halves (`k1`) are derived.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total size in machine words if the hint is stored in full.
    pub fn num_words_full(&self) -> usize {
        self.elems
            .iter()
            .map(|(k0, k1)| k0.num_words() + k1.num_words())
            .sum()
    }

    /// Size in machine words when the pseudo-random half is regenerated
    /// from the seed (the KSHGen optimization): only `k0` is stored.
    pub fn num_words_seeded(&self) -> usize {
        self.elems.iter().map(|(k0, _)| k0.num_words()).sum()
    }

    /// The limbs of the ciphertext-modulus chain covered by digit `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn digit_limbs(&self, d: usize) -> &[u32] {
        &self.digit_limbs[d]
    }

    /// The integrity digest computed over the hint payload at keygen.
    pub fn integrity_digest(&self) -> u64 {
        self.digest
    }

    /// Recomputes the payload digest and compares it against the one
    /// stored at keygen. `false` means the hint was modified after
    /// generation (bit flips, truncation, tampering).
    pub fn verify_integrity(&self) -> bool {
        self.compute_digest() == self.digest
    }

    /// Bytes this key keeps resident when fully materialized (both hint
    /// halves).
    pub fn resident_bytes(&self) -> usize {
        self.num_words_full() * 8
    }

    /// Drops the pseudo-random halves, keeping only what cannot be
    /// regenerated: the seed, the `k0` halves, and the digit metadata. The
    /// inverse is [`CompactKeySwitchKey::expand`], which reproduces this key
    /// bit-for-bit (verified through the integrity digest).
    pub fn to_compact(&self) -> CompactKeySwitchKey {
        CompactKeySwitchKey {
            kind: self.kind,
            k0: self.elems.iter().map(|(k0, _)| k0.clone()).collect(),
            digit_limbs: self.digit_limbs.clone(),
            seed: self.seed,
            error_bits: self.error_bits,
            digest: self.digest,
        }
    }

    /// FNV-1a over every word of the hint payload plus the structural
    /// metadata (kind, digit partition, seed).
    pub(crate) fn compute_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |word: u64| {
            for shift in [0u32, 32] {
                h ^= (word >> shift) & 0xffff_ffff;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.seed);
        match self.kind {
            KeySwitchKind::Standard => mix(0),
            KeySwitchKind::Boosted { digits } => mix(1 + digits as u64),
        }
        for limbs in &self.digit_limbs {
            for &l in limbs {
                mix(l as u64);
            }
        }
        for (k0, k1) in &self.elems {
            for poly in [k0, k1] {
                for k in 0..poly.num_limbs() {
                    for &w in poly.limb(k) {
                        mix(w);
                    }
                }
            }
        }
        h
    }
}

/// The compact resident form of a keyswitch hint: the seed, the non-random
/// `k0` halves, and the digit metadata — everything the pseudorandom halves
/// can be regenerated *from*, and nothing they can be regenerated *to*.
///
/// This is the form keys live in at rest (ARK's compressed keys, the
/// payload CraterLake streams from HBM); [`CompactKeySwitchKey::expand`]
/// plays the KSHGen functional unit, materializing the `k1` halves through
/// the vectorized seeded generator on demand. The stored `digest` is the
/// digest of the *materialized* key, so expansion re-verifies end to end
/// that regeneration reproduced exactly the hint keygen produced.
#[derive(Debug, Clone)]
pub struct CompactKeySwitchKey {
    pub(crate) kind: KeySwitchKind,
    /// The non-random halves (`k0` per digit), NTT form, over the key basis.
    pub(crate) k0: Vec<RnsPoly>,
    /// Ciphertext-modulus limbs covered by each digit.
    pub(crate) digit_limbs: Vec<Vec<u32>>,
    /// Seed regenerating every `k1`.
    pub(crate) seed: u64,
    /// `log2` of the hint error magnitude (see [`KeySwitchKey`]).
    pub(crate) error_bits: f64,
    /// Integrity digest of the fully materialized key.
    pub(crate) digest: u64,
}

impl CompactKeySwitchKey {
    /// The keyswitching algorithm this key is for.
    pub fn kind(&self) -> KeySwitchKind {
        self.kind
    }

    /// Number of digits.
    pub fn num_digits(&self) -> usize {
        self.k0.len()
    }

    /// The seed from which the pseudo-random halves are derived.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The integrity digest of the materialized key this compact form
    /// expands to.
    pub fn integrity_digest(&self) -> u64 {
        self.digest
    }

    /// Total size in machine words of the resident payload (`k0` only).
    pub fn num_words(&self) -> usize {
        self.k0.iter().map(RnsPoly::num_words).sum()
    }

    /// Bytes this compact key keeps resident.
    pub fn resident_bytes(&self) -> usize {
        self.num_words() * 8
    }

    /// Materializes the full keyswitch key: regenerates every pseudo-random
    /// half from the seed through the vectorized seeded generator, then
    /// verifies the result against the stored integrity digest.
    ///
    /// # Errors
    ///
    /// [`FheError::CorruptKey`] when the materialized key's digest does not
    /// match — either the compact payload was corrupted or the generator
    /// diverged from the one keygen used.
    pub fn expand(&self, ctx: &CkksContext) -> FheResult<KeySwitchKey> {
        let rns = ctx.rns();
        let elems = self
            .k0
            .iter()
            .enumerate()
            .map(|(d, k0)| {
                let k1 = crate::keyswitch::prandom_poly(rns, k0.basis(), self.seed, d as u64);
                (k0.clone(), k1)
            })
            .collect();
        let key = KeySwitchKey {
            kind: self.kind,
            elems,
            digit_limbs: self.digit_limbs.clone(),
            seed: self.seed,
            error_bits: self.error_bits,
            digest: self.digest,
        };
        if !key.verify_integrity() {
            return Err(FheError::CorruptKey {
                op: "expand_compact_key",
                reason: format!(
                    "materialized hint digest {:#018x} does not match the stored {:#018x}: \
                     compact payload corrupted or generator mismatch",
                    key.compute_digest(),
                    self.digest
                ),
            });
        }
        Ok(key)
    }
}
