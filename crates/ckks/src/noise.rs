//! Noise measurement and budget estimation.
//!
//! A ciphertext's *multiplicative budget* (Sec. 2.3, Fig. 2) is the depth
//! it can still absorb before decryption fails. This module provides the
//! two tools implementations use to reason about it:
//!
//! - [`CkksContext::noise_bits`]: the *exact* current noise, measured with
//!   the secret key (a debugging/validation tool — it decrypts).
//! - [`CkksContext::budget_bits`]: the remaining headroom
//!   `log2(Q) - log2(noise) - log2(scale)`-style estimate that tracks the
//!   saw-tooth of Fig. 2.

use cl_math::BigUint;

use crate::{Ciphertext, CkksContext, Plaintext, SecretKey};

impl CkksContext {
    /// Measures the exact noise of `ct` relative to the expected plaintext
    /// `expected`, in bits: `log2(max_coeff |phase - m|)`.
    ///
    /// Requires the secret key; intended for tests, noise studies and
    /// parameter debugging (real deployments estimate instead).
    pub fn noise_bits(&self, ct: &Ciphertext, expected: &Plaintext, sk: &SecretKey) -> f64 {
        let rns = self.rns();
        let basis = rns.q_basis(ct.level());
        let s = rns.restrict(sk.poly(), &basis);
        let mut phase = rns.mul(ct.c1(), &s);
        rns.add_assign(&mut phase, ct.c0());
        let mut diff = rns.sub(&phase, expected.poly());
        rns.from_ntt(&mut diff);
        let moduli: Vec<u64> = basis.0.iter().map(|&l| rns.modulus_value(l)).collect();
        let q_big = BigUint::product(&moduli);
        let mut max_noise = 0f64;
        let mut residues = vec![0u64; diff.num_limbs()];
        for i in 0..self.params().ring_degree() {
            for k in 0..diff.num_limbs() {
                residues[k] = diff.limb(k)[i];
            }
            let big = BigUint::crt_combine(&residues, &moduli);
            let (_, mag) = big.centered(&q_big);
            max_noise = max_noise.max(mag.to_f64());
        }
        max_noise.max(1.0).log2()
    }

    /// Estimated remaining multiplicative budget of `ct`, in bits:
    /// `log2(Q_level) - log2(scale)` headroom above the message. One
    /// homomorphic multiplication consumes roughly `log2(scale)` bits, so
    /// `budget_bits / log2(scale)` approximates the remaining depth — the
    /// quantity Fig. 2 plots.
    pub fn budget_bits(&self, ct: &Ciphertext) -> f64 {
        let rns = self.rns();
        let log_q: f64 = (0..ct.level())
            .map(|l| (rns.modulus_value(l as u32) as f64).log2())
            .sum();
        (log_q - ct.scale().log2()).max(0.0)
    }

    /// Approximate remaining multiplicative depth (levels of budget left).
    pub fn remaining_depth(&self, ct: &Ciphertext) -> usize {
        let per_level = self.default_scale().log2();
        (self.budget_bits(ct) / per_level).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CkksParams, KeySwitchKind};
    use rand::SeedableRng;

    fn setup() -> (CkksContext, SecretKey, rand::rngs::StdRng) {
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(4)
            .special_limbs(4)
            .limb_bits(45)
            .scale_bits(45)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sk = ctx.keygen(&mut rng);
        (ctx, sk, rng)
    }

    #[test]
    fn fresh_ciphertext_noise_is_small() {
        let (ctx, sk, mut rng) = setup();
        let pt = ctx.encode(&[1.0, -2.0], ctx.default_scale(), 4);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let noise = ctx.noise_bits(&ct, &pt, &sk);
        // Fresh noise is the sampled error: a handful of bits, far below
        // the 45-bit scale.
        assert!(noise < 20.0, "fresh noise {noise} bits");
    }

    #[test]
    fn noise_grows_with_multiplication() {
        let (ctx, sk, mut rng) = setup();
        let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let vals = vec![1.5, 0.5, -1.0];
        let pt = ctx.encode(&vals, ctx.default_scale(), 4);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let fresh_noise = ctx.noise_bits(&ct, &pt, &sk);
        let sq = ctx.square(&ct, &relin);
        let sq_vals: Vec<f64> = vals.iter().map(|v| v * v).collect();
        let expected_sq = ctx.encode(&sq_vals, sq.scale(), sq.level());
        let sq_noise = ctx.noise_bits(&sq, &expected_sq, &sk);
        assert!(
            sq_noise > fresh_noise + 10.0,
            "multiplication should grow noise substantially: {fresh_noise} -> {sq_noise}"
        );
    }

    #[test]
    fn budget_saw_tooths_like_fig2() {
        // Consuming levels shrinks the budget; the remaining-depth counter
        // decrements by ~1 per rescale.
        let (ctx, sk, mut rng) = setup();
        let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let pt = ctx.encode(&[1.01], ctx.default_scale(), 4);
        let mut ct = ctx.encrypt(&pt, &sk, &mut rng);
        let mut budgets = vec![ctx.remaining_depth(&ct)];
        for _ in 0..3 {
            ct = ctx.rescale(&ctx.square(&ct, &relin));
            budgets.push(ctx.remaining_depth(&ct));
        }
        // Strictly decreasing until exhausted, then pinned at 0.
        assert!(
            budgets.windows(2).all(|w| w[1] < w[0] || (w[0] == 0 && w[1] == 0)),
            "budget must decrease monotonically: {budgets:?}"
        );
        // 4 limbs just under 2^45 minus a 2^45 scale: conservative floor
        // gives depth 2 (the true headroom is fractionally below 3).
        assert_eq!(budgets[0], 2);
        assert_eq!(*budgets.last().unwrap(), 0);
    }

    #[test]
    fn budget_estimate_matches_level_accounting() {
        let (ctx, _, _) = setup();
        let pt = ctx.encode(&[0.5], ctx.default_scale(), 2);
        let ct = ctx.trivial_encrypt(&pt);
        // 2 limbs just under 2^45 minus the 2^45 scale: fractionally under
        // one full level of headroom, so the conservative floor reports 0.
        assert_eq!(ctx.remaining_depth(&ct), 0);
        let pt3 = ctx.encode(&[0.5], ctx.default_scale(), 3);
        let ct3 = ctx.trivial_encrypt(&pt3);
        assert_eq!(ctx.remaining_depth(&ct3), 1);
    }
}
