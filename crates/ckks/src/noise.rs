//! Noise measurement, analytic estimation, and budget accounting.
//!
//! A ciphertext's *multiplicative budget* (Sec. 2.3, Fig. 2) is the depth
//! it can still absorb before decryption fails. This module provides the
//! tools implementations use to reason about it:
//!
//! - [`CkksContext::noise_bits`]: the *exact* current noise, measured with
//!   the secret key (a debugging/validation tool — it decrypts).
//! - The **analytic noise model**: per-operation estimates of
//!   `log2(noise)` maintained on every [`Ciphertext`] without any secret
//!   material ([`Ciphertext::noise_estimate_bits`]). The model assumes
//!   slot values of magnitude `O(1)` and is validated against the exact
//!   oracle in tests (within 5 bits over a depth-3
//!   multiply/rotate/rescale circuit).
//! - [`CkksContext::budget_bits`]: the remaining headroom
//!   `log2(Q) - log2(scale) - noise_estimate`, the saw-tooth of Fig. 2.
//!
//! # The analytic model
//!
//! All estimates are in the `log2` domain; `⊕` below is
//! `log2(2^a + 2^b)` (a soft max). With `n` the ring degree,
//! `σ ≈ 3.2` the error sampler's deviation, and `Δ` the scale:
//!
//! | operation        | estimate                                          |
//! |------------------|---------------------------------------------------|
//! | fresh encrypt    | `log2(σ·sqrt(2·ln 2n))`                           |
//! | public encrypt   | fresh `+ log2(n)/2` (error–ephemeral convolution) |
//! | trivial encrypt  | `0` (noiseless)                                   |
//! | add / sub        | `ν_a ⊕ ν_b`                                       |
//! | add_plain        | unchanged                                         |
//! | mul_plain        | `ν_a + log2 Δ_p ⊕ log2 Δ_a − 1`                   |
//! | mul / square     | `log2 Δ_a + ν_b ⊕ log2 Δ_b + ν_a ⊕ ν_a+ν_b ⊕ ν_ks`|
//! | rescale          | `(ν − log2 q_drop) ⊕ log2(n)/2`                   |
//! | mod_drop         | unchanged                                         |
//! | rotate/conjugate | `ν ⊕ ν_ks`                                        |
//!
//! The model is *average-case*: the message polynomial behaves like a
//! random signal of total mass `O(Δ)` (slot values of magnitude `O(1)`),
//! so convolving it with an error polynomial grows the error by the
//! message magnitude `Δ` with no extra `sqrt(n)` factor — the incoherent
//! cross terms cancel on average. Worst-case (canonical-embedding) bounds
//! would add `log2(n)/2` per multiplication; the oracle-validation test
//! below shows the average-case model stays within 5 bits of measured
//! noise while the worst-case bound drifts ever further upward with depth.
//!
//! The keyswitch term `ν_ks` is
//! `max_d(log2 q_d) + log2(#digits) + log2(σ·e_scale) + log2(n)/2 − log2 P
//! ⊕ log2(n)/2`: the hint-error product divided by the special modulus,
//! floored by the same rounding floor as rescale (the ModDown division).

use cl_math::BigUint;

use crate::{Ciphertext, CkksContext, KeySwitchKey, Plaintext, SecretKey};

/// Standard deviation of the centered-binomial error sampler.
pub(crate) const SIGMA: f64 = 3.2;

/// `log2(2^a + 2^b)` — the soft maximum used to combine noise terms.
pub(crate) fn log2_add(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (1.0 + 2f64.powf(lo - hi)).log2()
}

impl CkksContext {
    /// Measures the exact noise of `ct` relative to the expected plaintext
    /// `expected`, in bits: `log2(max_coeff |phase - m|)`.
    ///
    /// Requires the secret key; intended for tests, noise studies and
    /// parameter debugging (real deployments use the analytic estimate
    /// carried by every [`Ciphertext`] instead).
    pub fn noise_bits(&self, ct: &Ciphertext, expected: &Plaintext, sk: &SecretKey) -> f64 {
        let rns = self.rns();
        let basis = rns.q_basis(ct.level());
        let s = rns.restrict(sk.poly(), &basis);
        let mut phase = rns.mul(ct.c1(), &s);
        rns.add_assign(&mut phase, ct.c0());
        let mut diff = rns.sub(&phase, expected.poly());
        rns.from_ntt(&mut diff);
        let moduli: Vec<u64> = basis.0.iter().map(|&l| rns.modulus_value(l)).collect();
        let q_big = BigUint::product(&moduli);
        let mut max_noise = 0f64;
        let mut residues = vec![0u64; diff.num_limbs()];
        for i in 0..self.params().ring_degree() {
            for (k, r) in residues.iter_mut().enumerate() {
                *r = diff.limb(k)[i];
            }
            let big = BigUint::crt_combine(&residues, &moduli);
            let (_, mag) = big.centered(&q_big);
            max_noise = max_noise.max(mag.to_f64());
        }
        max_noise.max(1.0).log2()
    }

    /// Estimated remaining multiplicative budget of `ct`, in bits:
    /// `log2(Q_level) - log2(scale) - noise_estimate` headroom above the
    /// message, clamped at zero. One homomorphic multiplication consumes
    /// roughly `log2(scale)` bits, so `budget_bits / log2(scale)`
    /// approximates the remaining depth — the quantity Fig. 2 plots.
    ///
    /// Unlike the pre-noise-tracking accounting (`log2 Q - log2 scale`
    /// alone), this subtracts the analytically tracked noise estimate, so
    /// a ciphertext that has accumulated keyswitch/rescale noise no longer
    /// over-reports its remaining depth.
    pub fn budget_bits(&self, ct: &Ciphertext) -> f64 {
        self.budget_bits_signed(ct).max(0.0)
    }

    /// The unclamped budget: negative values mean the noise has overtaken
    /// the modulus headroom and decryption is already unreliable. The
    /// strict guardrail policy compares this signed figure against its
    /// threshold so exhaustion is observable (the public
    /// [`CkksContext::budget_bits`] clamps at zero).
    pub(crate) fn budget_bits_signed(&self, ct: &Ciphertext) -> f64 {
        let rns = self.rns();
        let log_q: f64 = (0..ct.level())
            .map(|l| (rns.modulus_value(l as u32) as f64).log2())
            .sum();
        log_q - ct.scale().log2() - ct.noise_bits_est.max(0.0)
    }

    /// Approximate remaining multiplicative depth (levels of budget left).
    pub fn remaining_depth(&self, ct: &Ciphertext) -> usize {
        let per_level = self.default_scale().log2();
        (self.budget_bits(ct) / per_level).floor() as usize
    }

    // ------------------------------------------------------------------
    // Analytic per-operation estimates (no secret key required)
    // ------------------------------------------------------------------

    /// Noise of a fresh symmetric encryption: the error sample's expected
    /// maximum over `n` coefficients.
    pub(crate) fn est_fresh_bits(&self) -> f64 {
        let n = self.params().ring_degree() as f64;
        (SIGMA * (2.0 * (2.0 * n).ln()).sqrt()).log2()
    }

    /// Noise of a public-key encryption: the pk error convolves with the
    /// ternary ephemeral secret, adding a `sqrt(n)` growth factor.
    pub(crate) fn est_public_bits(&self) -> f64 {
        self.est_fresh_bits() + 0.5 * (self.params().ring_degree() as f64).log2()
    }

    /// Noise after adding/subtracting two ciphertexts.
    pub(crate) fn est_add(a: &Ciphertext, b: &Ciphertext) -> f64 {
        log2_add(a.noise_bits_est, b.noise_bits_est)
    }

    /// Noise after a plaintext multiplication at plaintext scale
    /// `p_scale`: the ciphertext noise grows by the plaintext magnitude,
    /// soft-maxed with the plaintext's integer rounding (±0.5 per
    /// coefficient) riding on the `Δ`-sized message.
    pub(crate) fn est_mul_plain(&self, a: &Ciphertext, p_scale: f64) -> f64 {
        log2_add(
            a.noise_bits_est + p_scale.log2(),
            a.scale.log2() - 1.0,
        )
    }

    /// Noise after a ciphertext-ciphertext multiplication (tensor +
    /// relinearization). Average-case: slot values of magnitude `O(1)`
    /// give a message of total mass `≈ Δ`, so each cross term is the other
    /// operand's scale plus this operand's noise.
    pub(crate) fn est_mul(&self, a: &Ciphertext, b: &Ciphertext, ksk: &KeySwitchKey) -> f64 {
        let cross = log2_add(
            a.scale.log2() + b.noise_bits_est,
            b.scale.log2() + a.noise_bits_est,
        );
        let quadratic = a.noise_bits_est + b.noise_bits_est;
        log2_add(
            log2_add(cross, quadratic),
            self.est_keyswitch_bits(a.level, ksk),
        )
    }

    /// Noise after rescaling: division by the dropped modulus, floored by
    /// the rounding error propagated through the ternary secret.
    pub(crate) fn est_rescale(&self, a: &Ciphertext) -> f64 {
        let rns = self.rns();
        let dropped = (rns.modulus_value((a.level - 1) as u32) as f64).log2();
        log2_add(a.noise_bits_est - dropped, self.est_round_floor())
    }

    /// The rounding floor `log2(sqrt n)` shared by rescale and ModDown:
    /// the ±0.5 division rounding convolved with the ternary secret, whose
    /// incoherent contributions average out to `sqrt(n)`-ish mass (the
    /// worst-case `‖s‖₁/2 ≈ n/3` is never approached in practice).
    pub(crate) fn est_round_floor(&self) -> f64 {
        0.5 * (self.params().ring_degree() as f64).log2()
    }

    /// Noise a keyswitch (relinearization, rotation, conjugation) adds at
    /// `level`: per-digit hint-error products scaled down by the special
    /// modulus `P`, floored by the ModDown rounding.
    pub(crate) fn est_keyswitch_bits(&self, level: usize, ksk: &KeySwitchKey) -> f64 {
        let rns = self.rns();
        let special = self.special_for(ksk.kind());
        let log_p: f64 = (0..special)
            .map(|k| {
                let pl = rns.p_basis(special).0[k];
                (rns.modulus_value(pl) as f64).log2()
            })
            .sum();
        let conv = 0.5 * (self.params().ring_degree() as f64).log2();
        let mut digits = 0usize;
        let mut max_log_qd = f64::NEG_INFINITY;
        for limbs in &ksk.digit_limbs {
            let log_qd: f64 = limbs
                .iter()
                .filter(|&&l| (l as usize) < level)
                .map(|&l| (rns.modulus_value(l) as f64).log2())
                .sum();
            if log_qd > 0.0 {
                digits += 1;
                max_log_qd = max_log_qd.max(log_qd);
            }
        }
        if digits == 0 {
            return self.est_round_floor();
        }
        let hint_term =
            max_log_qd + (digits as f64).log2() + ksk.error_bits + conv - log_p;
        log2_add(hint_term, self.est_round_floor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CkksParams, KeySwitchKind};
    use rand::SeedableRng;

    fn setup() -> (CkksContext, SecretKey, rand::rngs::StdRng) {
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(4)
            .special_limbs(4)
            .limb_bits(45)
            .scale_bits(45)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sk = ctx.keygen(&mut rng);
        (ctx, sk, rng)
    }

    #[test]
    fn fresh_ciphertext_noise_is_small() {
        let (ctx, sk, mut rng) = setup();
        let pt = ctx.encode(&[1.0, -2.0], ctx.default_scale(), 4);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let noise = ctx.noise_bits(&ct, &pt, &sk);
        // Fresh noise is the sampled error: a handful of bits, far below
        // the 45-bit scale.
        assert!(noise < 20.0, "fresh noise {noise} bits");
        // The analytic estimate agrees without the secret key.
        assert!(
            (ct.noise_estimate_bits() - noise).abs() <= 5.0,
            "estimate {} vs oracle {noise}",
            ct.noise_estimate_bits()
        );
    }

    #[test]
    fn noise_grows_with_multiplication() {
        let (ctx, sk, mut rng) = setup();
        let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let vals = vec![1.5, 0.5, -1.0];
        let pt = ctx.encode(&vals, ctx.default_scale(), 4);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let fresh_noise = ctx.noise_bits(&ct, &pt, &sk);
        let sq = ctx.square(&ct, &relin);
        let sq_vals: Vec<f64> = vals.iter().map(|v| v * v).collect();
        let expected_sq = ctx.encode(&sq_vals, sq.scale(), sq.level());
        let sq_noise = ctx.noise_bits(&sq, &expected_sq, &sk);
        assert!(
            sq_noise > fresh_noise + 10.0,
            "multiplication should grow noise substantially: {fresh_noise} -> {sq_noise}"
        );
        // The tracked estimate follows the growth.
        assert!(
            sq.noise_estimate_bits() > ct.noise_estimate_bits() + 10.0,
            "estimate must track multiplicative growth: {} -> {}",
            ct.noise_estimate_bits(),
            sq.noise_estimate_bits()
        );
    }

    #[test]
    fn budget_saw_tooths_like_fig2() {
        // Consuming levels shrinks the budget; the remaining-depth counter
        // decrements by ~1 per rescale.
        let (ctx, sk, mut rng) = setup();
        let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let pt = ctx.encode(&[1.01], ctx.default_scale(), 4);
        let mut ct = ctx.encrypt(&pt, &sk, &mut rng);
        let mut budgets = vec![ctx.remaining_depth(&ct)];
        for _ in 0..3 {
            ct = ctx.rescale(&ctx.square(&ct, &relin));
            budgets.push(ctx.remaining_depth(&ct));
        }
        // Strictly decreasing until exhausted, then pinned at 0.
        assert!(
            budgets.windows(2).all(|w| w[1] < w[0] || (w[0] == 0 && w[1] == 0)),
            "budget must decrease monotonically: {budgets:?}"
        );
        // 4 limbs just under 2^45 minus a 2^45 scale: conservative floor
        // gives depth 2 (the true headroom is fractionally below 3).
        assert_eq!(budgets[0], 2);
        assert_eq!(*budgets.last().unwrap(), 0);
    }

    #[test]
    fn budget_estimate_matches_level_accounting() {
        let (ctx, _, _) = setup();
        let pt = ctx.encode(&[0.5], ctx.default_scale(), 2);
        let ct = ctx.trivial_encrypt(&pt);
        // 2 limbs just under 2^45 minus the 2^45 scale: fractionally under
        // one full level of headroom, so the conservative floor reports 0.
        assert_eq!(ctx.remaining_depth(&ct), 0);
        let pt3 = ctx.encode(&[0.5], ctx.default_scale(), 3);
        let ct3 = ctx.trivial_encrypt(&pt3);
        assert_eq!(ctx.remaining_depth(&ct3), 1);
    }

    #[test]
    fn budget_subtracts_tracked_noise() {
        // Two ciphertexts with identical level/scale but different noise
        // histories must report different budgets: the noisier one has
        // less headroom left.
        let (ctx, _, _) = setup();
        let pt = ctx.encode(&[0.5], ctx.default_scale(), 4);
        let quiet = ctx.trivial_encrypt(&pt); // noiseless
        let noisy = ctx.trivial_encrypt(&pt).with_noise_bits(40.0);
        assert!(
            ctx.budget_bits(&noisy) < ctx.budget_bits(&quiet) - 30.0,
            "budget must subtract the tracked noise estimate: quiet {} vs noisy {}",
            ctx.budget_bits(&quiet),
            ctx.budget_bits(&noisy)
        );
    }

    #[test]
    fn analytic_estimate_tracks_oracle_through_depth3_circuit() {
        // The acceptance circuit: depth-3 multiply/rotate/rescale at
        // test-scale parameters. At every step the secret-key-free
        // estimate must stay within 5 bits of the exact oracle.
        //
        // 30-bit limbs and scale: the oracle re-encodes the expected values
        // at the ciphertext's current scale, and `encode` represents
        // coefficients as `i64` — so every intermediate scale (at most Δ²
        // = 2^60 between a multiply and its rescale) must stay below 2^62
        // for the oracle itself to be exact.
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(4)
            .special_limbs(4)
            .limb_bits(30)
            .scale_bits(30)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sk = ctx.keygen(&mut rng);
        let kind = KeySwitchKind::Boosted { digits: 1 };
        let relin = ctx.relin_keygen(&sk, kind, &mut rng);
        let rot = ctx.rotation_keygen(&sk, 1, kind, &mut rng);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots)
            .map(|i| 0.4 + 0.5 * ((i as f64 * 0.37).sin()))
            .collect();
        let pt = ctx.encode(&vals, ctx.default_scale(), 4);
        let mut ct = ctx.encrypt(&pt, &sk, &mut rng);
        let mut expect = vals.clone();

        let check = |label: &str, ct: &Ciphertext, expect: &[f64], sk: &SecretKey| {
            let expected_pt = ctx.encode(expect, ct.scale(), ct.level());
            let oracle = ctx.noise_bits(ct, &expected_pt, sk);
            let est = ct.noise_estimate_bits();
            assert!(
                (est - oracle).abs() <= 5.0,
                "{label}: analytic estimate {est:.1} vs oracle {oracle:.1} \
                 (must agree within 5 bits)"
            );
        };

        check("fresh", &ct, &expect, &sk);
        for depth in 0..3 {
            // Multiply (square), then rotate, then rescale — one level.
            ct = ctx.square(&ct, &relin);
            for v in expect.iter_mut() {
                *v = *v * *v;
            }
            check(&format!("square@{depth}"), &ct, &expect, &sk);
            ct = ctx.rotate(&ct, 1, &rot);
            let mut rotated: Vec<f64> = expect[1..].to_vec();
            rotated.push(expect[0]);
            expect = rotated;
            check(&format!("rotate@{depth}"), &ct, &expect, &sk);
            ct = ctx.rescale(&ct);
            check(&format!("rescale@{depth}"), &ct, &expect, &sk);
        }
        assert_eq!(ct.level(), 1);
    }

    #[test]
    fn log2_add_soft_maxes() {
        assert!((log2_add(10.0, 10.0) - 11.0).abs() < 1e-12);
        assert!((log2_add(20.0, 0.0) - 20.0).abs() < 1e-3);
        assert!((log2_add(0.0, 20.0) - 20.0).abs() < 1e-3);
    }
}
