//! Packed CKKS bootstrapping.
//!
//! Bootstrapping refreshes a ciphertext's multiplicative budget (Sec. 2.3,
//! Fig. 2) and is what makes *unbounded* computation possible. This crate
//! provides both sides of it:
//!
//! - [`BootstrapPlan`]: the state-of-the-art packed bootstrapping pipeline
//!   (ModRaise → CoeffToSlot → EvalMod → SlotToCoeff, following Bossuat et
//!   al. \[11\] / Lattigo \[53\]) expressed as homomorphic-operation counts and
//!   expandable into an [`cl_isa::HeGraph`] fragment for the performance
//!   model. The CoeffToSlot/SlotToCoeff transforms use the FFT-like radix
//!   decomposition into on-chip-sized partitions the paper's compiler
//!   applies (Sec. 6, "a 4x4 tile").
//! - [`functional`]: an executable bootstrapping implementation over the
//!   `cl-ckks` library at reduced (test-scale) parameters, validating that
//!   the pipeline the plan describes actually refreshes ciphertexts.

#![warn(missing_docs)]
// Library code must propagate failures (`FheResult`/`?`) or `expect` with
// the violated invariant; tests are exempt. Enforced by scripts/verify.sh.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod functional;
mod plan;

pub use functional::{
    try_bsgs_transform, BootState, BootstrapKeys, BootstrapPrecompute, Bootstrapper,
    PrecomputedTransform, TransformStage,
};
pub use plan::BootstrapPlan;
