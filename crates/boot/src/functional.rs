//! Functional CKKS bootstrapping.
//!
//! An executable implementation of the pipeline [`crate::BootstrapPlan`]
//! models, over the `cl-ckks` library at test-scale parameters:
//!
//! 1. **ModRaise** — lift the exhausted level-1 ciphertext to the full
//!    modulus chain. Decryption then yields `m + q0·I(X)` for an integer
//!    polynomial `I` bounded by the secret key's Hamming weight.
//! 2. **CoeffToSlot** — a homomorphic linear transform with the inverse
//!    special-FFT matrix, moving polynomial coefficients into slots (the
//!    encoder's coefficient layout makes this transform C-linear, so a
//!    single dense transform suffices at test scale).
//! 3. **EvalMod** — remove the `q0·I` term by evaluating
//!    `(q0/2π)·sin(2πx/q0)` on each slot: a low-degree Taylor expansion of
//!    `exp(2πi·x/(q0·2^r))` followed by `r` repeated squarings (the
//!    double-angle iteration of the state-of-the-art algorithm \[11\]),
//!    applied separately to the real and imaginary slot components.
//! 4. **SlotToCoeff** — the forward special-FFT transform back to
//!    coefficients.
//!
//! The result is a ciphertext of the *same message* at a much higher level
//! — a refreshed multiplicative budget (Fig. 2).

use cl_ckks::{
    Ciphertext, CkksContext, FheError, FheResult, GuardrailPolicy, KeySwitchKey, SecretKey,
};
use cl_math::Complex;
use rand::Rng;

/// Key material for one bootstrapping configuration: rotation keys for all
/// transform diagonals, a conjugation key, and a relinearization key.
#[derive(Debug)]
pub struct BootstrapKeys {
    relin: KeySwitchKey,
    conj: KeySwitchKey,
    rotations: Vec<(i64, KeySwitchKey)>,
}

/// A functional bootstrapper: precomputed transform matrices plus the
/// EvalMod configuration.
pub struct Bootstrapper {
    /// Diagonals of the CoeffToSlot (inverse special FFT) matrix.
    cts_diags: Vec<(i64, Vec<Complex>)>,
    /// Diagonals of the SlotToCoeff (forward special FFT) matrix.
    sts_diags: Vec<(i64, Vec<Complex>)>,
    /// Double-angle iterations.
    r: u32,
    /// Taylor degree for `exp(2πi·y/2^r)`.
    taylor_degree: usize,
    /// Input range bound `|y| <= k` for EvalMod.
    k_bound: f64,
}

impl std::fmt::Debug for Bootstrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bootstrapper")
            .field("r", &self.r)
            .field("taylor_degree", &self.taylor_degree)
            .field("k_bound", &self.k_bound)
            .finish()
    }
}

/// Extracts the generalized diagonals of an `m x m` complex matrix given as
/// a linear map (closure on basis vectors). Diagonal `d` holds
/// `M[j][(j+d) mod m]`.
fn matrix_diagonals<F>(m: usize, apply: F) -> Vec<(i64, Vec<Complex>)>
where
    F: Fn(&[Complex]) -> Vec<Complex>,
{
    // Columns of the matrix: apply to unit vectors.
    let mut cols = Vec::with_capacity(m);
    for k in 0..m {
        let mut e = vec![Complex::default(); m];
        e[k] = Complex::new(1.0, 0.0);
        cols.push(apply(&e));
    }
    let mut diags = Vec::new();
    for d in 0..m {
        let mut diag = vec![Complex::default(); m];
        let mut nonzero = false;
        for j in 0..m {
            let v = cols[(j + d) % m][j];
            if v.abs() > 1e-12 {
                nonzero = true;
            }
            diag[j] = v;
        }
        if nonzero {
            diags.push((d as i64, diag));
        }
    }
    diags
}

impl Bootstrapper {
    /// Builds a bootstrapper for the given context. `h` is the secret key's
    /// Hamming weight (bounds the EvalMod range).
    pub fn new(ctx: &CkksContext, h: usize) -> Self {
        let slots = ctx.params().slots();
        let fft = cl_math::SpecialFft::new(slots);
        // CoeffToSlot: slots(u) = iFFT(z) — C-linear in z.
        let cts_diags = matrix_diagonals(slots, |z| {
            let mut v = z.to_vec();
            fft.inverse(&mut v);
            v
        });
        // SlotToCoeff: z = FFT(u).
        let sts_diags = matrix_diagonals(slots, |u| {
            let mut v = u.to_vec();
            fft.forward(&mut v);
            v
        });
        // |I| <= (h+1)/2 plus the message's q0 fraction.
        let k_bound = (h as f64 + 1.0) / 2.0 + 1.0;
        // Choose r so the Taylor argument 2π·k/2^r stays below ~0.8.
        let mut r = 0u32;
        while 2.0 * std::f64::consts::PI * k_bound / 2f64.powi(r as i32) > 0.8 {
            r += 1;
        }
        Self {
            cts_diags,
            sts_diags,
            r,
            taylor_degree: 7,
            k_bound,
        }
    }

    /// Multiplicative depth the pipeline consumes: CoeffToSlot (1) +
    /// real/imaginary split (1) + Taylor powers (3) + `r` squarings +
    /// final constant (1) + SlotToCoeff (1).
    pub fn depth(&self) -> usize {
        7 + self.r as usize
    }

    /// Generates the keyswitch keys bootstrapping needs.
    pub fn keygen<R: Rng + ?Sized>(
        &self,
        ctx: &CkksContext,
        sk: &SecretKey,
        kind: cl_ckks::KeySwitchKind,
        rng: &mut R,
    ) -> BootstrapKeys {
        let mut steps: Vec<i64> = self
            .cts_diags
            .iter()
            .chain(&self.sts_diags)
            .map(|(d, _)| *d)
            .filter(|&d| d != 0)
            .collect();
        steps.sort_unstable();
        steps.dedup();
        let rotations = steps
            .iter()
            .map(|&d| (d, ctx.rotation_keygen(sk, d, kind, rng)))
            .collect();
        BootstrapKeys {
            relin: ctx.relin_keygen(sk, kind, rng),
            conj: ctx.conjugation_keygen(sk, kind, rng),
            rotations,
        }
    }

    fn try_rot_key(keys: &BootstrapKeys, d: i64) -> FheResult<&KeySwitchKey> {
        keys.rotations
            .iter()
            .find(|(s, _)| *s == d)
            .map(|(_, k)| k)
            .ok_or_else(|| FheError::MissingKey {
                what: format!("rotation key for step {d}"),
            })
    }

    /// Homomorphic dense linear transform: `Σ_d diag_d ⊙ rot_d(ct)`.
    /// Consumes one level.
    fn try_linear_transform(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        diags: &[(i64, Vec<Complex>)],
        keys: &BootstrapKeys,
    ) -> FheResult<Ciphertext> {
        let level = ct.level();
        // Encode the diagonals at exactly the scale of the modulus the
        // closing rescale will drop: the transform then preserves the
        // ciphertext scale exactly (standard scale-management practice —
        // any deviation would be amplified exponentially by EvalMod's
        // squaring chain).
        let scale = ctx.rns().modulus_value((level - 1) as u32) as f64;
        let mut acc: Option<Ciphertext> = None;
        for (d, diag) in diags {
            let rotated = if *d == 0 {
                ct.clone()
            } else {
                ctx.try_rotate(ct, *d, Self::try_rot_key(keys, *d)?)?
            };
            let pt = ctx.encode_complex(diag, scale, level);
            let term = ctx.try_mul_plain(&rotated, &pt)?;
            acc = Some(match acc {
                None => term,
                Some(a) => ctx.try_add(&a, &term)?,
            });
        }
        let acc = acc.ok_or_else(|| FheError::InvalidParams {
            op: "linear_transform",
            reason: "transform has no nonzero diagonals".into(),
        })?;
        ctx.try_rescale(&acc)
    }

    /// EvalMod on the *real part* interpretation: input `ct` decodes to
    /// real slot values `y` with `|y| <= k_bound`; output decodes to
    /// `(1/2π)·sin(2π y)` at the same scale.
    fn try_eval_sin(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        keys: &BootstrapKeys,
    ) -> FheResult<Ciphertext> {
        let two_pi = 2.0 * std::f64::consts::PI;
        let theta = two_pi / 2f64.powi(self.r as i32);
        // Taylor coefficients of exp(i·theta·y) in y.
        let mut coeffs = Vec::with_capacity(self.taylor_degree + 1);
        let mut term = Complex::new(1.0, 0.0);
        coeffs.push(term);
        for k in 1..=self.taylor_degree {
            term = term * Complex::new(0.0, theta) / k as f64;
            coeffs.push(term);
        }
        // Powers y^1..y^7 with depth 3: y2=y*y, y3=y*y2, y4=y2*y2,
        // y5=y2*y3, y6=y3*y3, y7=y3*y4.
        let y1 = ct.clone();
        let y2 = ctx.try_rescale(&ctx.try_mul(&y1, &y1, &keys.relin)?)?;
        let y3 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y1, y2.level())?, &y2, &keys.relin)?)?;
        let y4 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y2, y2.level())?, &y2, &keys.relin)?)?;
        let y5 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y2, y3.level())?, &y3, &keys.relin)?)?;
        let y6 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y3, y3.level())?, &y3, &keys.relin)?)?;
        let y7 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y3, y4.level())?, &y4, &keys.relin)?)?;
        // Align all powers at the deepest level/scale and combine:
        // E0 = sum_k coeffs[k] * y^k.
        let target_level = y7.level();
        let powers = [y1, y2, y3, y4, y5, y6, y7];
        let mut acc: Option<Ciphertext> = None;
        for (k, p) in powers.iter().enumerate() {
            let p = ctx.try_mod_drop(p, target_level)?;
            // Encode each Taylor coefficient at the scale that makes the
            // product land, after the closing rescale, exactly on the
            // default scale — the squaring chain then cannot drift.
            let q_drop = ctx.rns().modulus_value((target_level - 1) as u32) as f64;
            let desired = ctx.default_scale() * q_drop;
            let coeff_scale = desired / p.scale();
            let slots = ctx.params().slots();
            let cvec = vec![coeffs[k + 1]; slots];
            let pt = ctx.encode_complex(&cvec, coeff_scale, target_level);
            let term = ctx.try_mul_plain(&p, &pt)?;
            acc = Some(match acc {
                None => term,
                Some(a) => ctx.try_add(&a, &term)?,
            });
        }
        let acc = acc.expect("Taylor sum over a non-empty power basis");
        let mut e = ctx.try_rescale(&acc)?;
        // + coeffs[0] (the constant 1).
        let ones = vec![coeffs[0]; ctx.params().slots()];
        let pt1 = ctx.encode_complex(&ones, e.scale(), e.level());
        e = ctx.try_add_plain(&e, &pt1)?;
        // Double-angle: square r times => exp(2πi·y).
        for _ in 0..self.r {
            e = ctx.try_rescale(&ctx.try_square(&e, &keys.relin)?)?;
        }
        // sin(2πy)/(2π) = Re(E * (-i/2π)) * 2 = w + conj(w),
        // w = E * (-i/(4π))... : sin = (E - conj E)/(2i);
        // k*sin = w + conj(w) with w = k·E/(2i) for real k = 1/(2π).
        let k_const = 1.0 / two_pi;
        let w_coeff = Complex::new(0.0, -k_const / 2.0); // k/(2i)
        let slots = ctx.params().slots();
        let q_drop = ctx.rns().modulus_value((e.level() - 1) as u32) as f64;
        let pt = ctx.encode_complex(
            &vec![w_coeff; slots],
            ctx.default_scale() * q_drop / e.scale(),
            e.level(),
        );
        let w = ctx.try_rescale(&ctx.try_mul_plain(&e, &pt)?)?;
        let wc = ctx.try_conjugate(&w, &keys.conj)?;
        ctx.try_add(&w, &wc)
    }

    /// Bootstraps `ct` (level 1, fully consumed) back to a high level.
    ///
    /// # Errors
    ///
    /// - [`FheError::InvalidParams`] if the context's budget cannot cover
    ///   the pipeline's depth (see [`Bootstrapper::depth`]), or if the
    ///   context runs the `AutoRescale` guardrail policy (the pipeline
    ///   manages scales explicitly; an auto-inserted rescale would corrupt
    ///   the EvalMod squaring chain).
    /// - [`FheError::MissingKey`] if a rotation key for a transform
    ///   diagonal is absent from `keys`.
    /// - Any error the underlying homomorphic ops report under the
    ///   context's guardrail policy.
    pub fn try_bootstrap(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        keys: &BootstrapKeys,
    ) -> FheResult<Ciphertext> {
        if matches!(ctx.policy(), GuardrailPolicy::AutoRescale) {
            return Err(FheError::InvalidParams {
                op: "bootstrap",
                reason: "bootstrap manages rescaling explicitly; the AutoRescale \
                         policy would insert extra rescales and corrupt the scale \
                         bookkeeping"
                    .into(),
            });
        }
        let l_max = ctx.max_level();
        if l_max <= self.depth() + 1 {
            return Err(FheError::InvalidParams {
                op: "bootstrap",
                reason: format!(
                    "budget {l_max} cannot cover bootstrap depth {}",
                    self.depth()
                ),
            });
        }
        let rns = ctx.rns();
        let q0 = rns.modulus_value(0) as f64;
        // ---- ModRaise: lift residues mod q0 to the full chain.
        let raise = |poly: &cl_rns::RnsPoly| {
            let mut p = poly.clone();
            rns.from_ntt(&mut p);
            let m0 = rns.modulus(0);
            let signed: Vec<i64> = p.limb(0).iter().map(|&x| m0.lift_centered(x)).collect();
            let mut out = rns.from_signed_coeffs(&signed, &rns.q_basis(l_max));
            rns.to_ntt(&mut out);
            out
        };
        // The raised ciphertext decrypts to `m·Δ + q0·I` with `|I|` bounded
        // by the EvalMod range: its dominant "noise" term is the `q0·I`
        // component EvalMod will remove, so seed the tracked estimate with
        // that magnitude rather than the fresh-encryption default.
        let raised = ctx
            .ciphertext_from_parts(raise(ct.c0()), raise(ct.c1()), l_max, ct.scale())
            .with_noise_bits(
                ct.noise_estimate_bits()
                    .max(q0.log2() + self.k_bound.log2()),
            );
        // ---- CoeffToSlot: slots become u_j = c_j + i·c_{j+slots}, where c
        // are the raised polynomial's coefficients (value m·Δ + q0·I).
        // The factor n/2 from the unnormalized embedding is absorbed by
        // the transform matrix itself (it is exactly the encoder's iFFT).
        let u = self.try_linear_transform(ctx, &raised, &self.cts_diags, keys)?;
        // Reinterpret: record the scale as q0·(old/old)… the true slot
        // values are (m·Δ + q0·I); dividing the recorded scale by
        // (Δ_in/ q0)·(old_scale/Δ_in)... concretely: decoded = true/scale.
        // We want decoded y = true/q0, so set scale := q0 * (u.scale/u.scale) = q0,
        // adjusted by the ratio the transform introduced.
        let y_full = u.clone().with_scale(u.scale() * q0 / ct.scale());
        // ---- Split real/imaginary parts.
        let conj = ctx.try_conjugate(&y_full, &keys.conj)?;
        // y_re = (u + conj)/2: the division by 2 is a free scale bump.
        let sum = ctx.try_add(&y_full, &conj)?;
        let y_re = sum.clone().with_scale(sum.scale() * 2.0);
        // y_im = (u - conj)/(2i): plaintext multiply by -i/2.
        let diff = ctx.try_sub(&y_full, &conj)?;
        let slots = ctx.params().slots();
        let half_i = ctx.encode_complex(
            &vec![Complex::new(0.0, -0.5); slots],
            ctx.rns().modulus_value((diff.level() - 1) as u32) as f64,
            diff.level(),
        );
        let y_im = ctx.try_rescale(&ctx.try_mul_plain(&diff, &half_i)?)?;
        // ---- EvalMod both components: result decodes to (mΔ)_component/q0.
        let m_re = self.try_eval_sin(ctx, &y_re, keys)?;
        let y_im_aligned = ctx.try_mod_drop(&y_im, m_re.level() + self.r as usize + 4)?;
        let m_im = self.try_eval_sin(ctx, &y_im_aligned, keys)?;
        // Recombine: m = m_re + i·m_im.
        let lvl = m_re.level().min(m_im.level());
        let m_re = ctx.try_mod_drop(&m_re, lvl)?;
        let m_im = ctx.try_mod_drop(&m_im, lvl)?;
        let q_drop = ctx.rns().modulus_value((lvl - 1) as u32) as f64;
        let i_pt = ctx.encode_complex(
            &vec![Complex::new(0.0, 1.0); slots],
            m_re.scale() * q_drop / m_im.scale(),
            lvl,
        );
        let m_im_i = ctx.try_rescale(&ctx.try_mul_plain(&m_im, &i_pt)?)?;
        let m_re = ctx.try_mod_drop(&m_re, m_im_i.level())?;
        // Align scales exactly before adding.
        let combined = ctx.try_add(&m_re.clone().with_scale(m_im_i.scale()), &m_im_i)?;
        // Undo the /q0 normalization: the slots now hold (m·Δ)/q0 at the
        // recorded scale; restore by dividing the recorded scale by q0 and
        // multiplying by the input scale.
        let restored = combined.clone().with_scale(combined.scale() * ct.scale() / q0);
        // ---- SlotToCoeff.
        let out = self.try_linear_transform(ctx, &restored, &self.sts_diags, keys)?;
        // EvalMod removed the `q0·I` term the analytic estimate has been
        // carrying since ModRaise; the refreshed ciphertext's error is
        // dominated by the sine-approximation instead (a degree-d Taylor
        // expansion leaves a relative error around 2^-d on the unit-scaled
        // slots). Re-seed the tracked estimate so downstream budget
        // accounting reflects the refreshed state, not the pre-EvalMod
        // bound.
        let approx_bits = out.scale().log2() - self.taylor_degree as f64;
        let est = out.noise_estimate_bits().min(approx_bits);
        Ok(out.with_noise_bits(est))
    }

    /// Panicking convenience wrapper around [`Bootstrapper::try_bootstrap`].
    ///
    /// # Panics
    ///
    /// Panics on any condition `try_bootstrap` reports as an error.
    #[must_use]
    pub fn bootstrap(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        keys: &BootstrapKeys,
    ) -> Ciphertext {
        self.try_bootstrap(ctx, ct, keys)
            .unwrap_or_else(|e| panic!("bootstrap: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_ckks::{CkksParams, KeySwitchKind};
    use rand::SeedableRng;

    fn boot_ctx() -> CkksContext {
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(20)
            .special_limbs(20)
            .limb_bits(45)
            .scale_bits(45)
            .build()
            .unwrap();
        CkksContext::new(params).unwrap()
    }

    #[test]
    fn matrix_diagonals_of_identity() {
        let d = matrix_diagonals(4, |v| v.to_vec());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, 0);
        for v in &d[0].1 {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn linear_transform_applies_fft_matrix() {
        // Applying CoeffToSlot to an encryption of z yields iFFT(z) in the
        // slots — checked against the plain FFT.
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        let vals: Vec<Complex> = (0..slots)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let pt = ctx.encode_complex(&vals, ctx.default_scale(), 5);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let out = booter
            .try_linear_transform(&ctx, &ct, &booter.cts_diags, &keys)
            .expect("transform on well-formed inputs");
        let got = ctx.decode_complex(&ctx.decrypt(&out, &sk), slots);
        let fft = cl_math::SpecialFft::new(slots);
        let mut expect = vals.clone();
        fft.inverse(&mut expect);
        for (g, e) in got.iter().zip(&expect) {
            assert!((*g - *e).abs() < 1e-2, "{g:?} vs {e:?}");
        }
    }

    #[test]
    fn eval_sin_matches_reference() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        // Real inputs within the bound.
        let vals: Vec<f64> = (0..slots)
            .map(|i| (i as f64 / slots as f64 - 0.5) * 2.0 * booter.k_bound * 0.9)
            .collect();
        let pt = ctx.encode(&vals, ctx.default_scale(), ctx.max_level());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let out = booter
            .try_eval_sin(&ctx, &ct, &keys)
            .expect("eval_sin on in-range inputs");
        let got = ctx.decode(&ctx.decrypt(&out, &sk), slots);
        for (g, &x) in got.iter().zip(&vals) {
            let expect = (2.0 * std::f64::consts::PI * x).sin() / (2.0 * std::f64::consts::PI);
            assert!(
                (g - expect).abs() < 1e-2,
                "sin mismatch at x={x}: {g} vs {expect}"
            );
        }
    }

    #[test]
    fn try_bootstrap_reports_missing_rotation_key() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let mut keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        // Drop one rotation key the CoeffToSlot transform needs.
        let (dropped, _) = keys.rotations.remove(0);
        let slots = ctx.params().slots();
        let pt = ctx.encode(&vec![0.25; slots], ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let err = booter
            .try_bootstrap(&ctx, &ct, &keys)
            .expect_err("bootstrap must fail without its rotation keys");
        match err {
            FheError::MissingKey { what } => {
                assert!(
                    what.contains(&format!("step {dropped}")),
                    "error must name the missing step: {what}"
                );
            }
            other => panic!("expected MissingKey, got {other:?}"),
        }
    }

    #[test]
    fn try_bootstrap_rejects_bad_policy_and_shallow_budget() {
        // A chain too short for the pipeline's depth.
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(6)
            .special_limbs(6)
            .limb_bits(45)
            .scale_bits(45)
            .build()
            .unwrap();
        let mut ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        let pt = ctx.encode(&vec![0.25; slots], ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);

        // AutoRescale is rejected up front: the pipeline's explicit
        // rescales would be doubled up by the policy.
        ctx.set_policy(cl_ckks::GuardrailPolicy::AutoRescale);
        match booter.try_bootstrap(&ctx, &ct, &keys) {
            Err(FheError::InvalidParams { op: "bootstrap", reason }) => {
                assert!(reason.contains("AutoRescale"), "{reason}");
            }
            other => panic!("expected InvalidParams for AutoRescale, got {other:?}"),
        }

        // Under the default policy the depth check fires.
        ctx.set_policy(cl_ckks::GuardrailPolicy::Permissive);
        match booter.try_bootstrap(&ctx, &ct, &keys) {
            Err(FheError::InvalidParams { op: "bootstrap", reason }) => {
                assert!(reason.contains("cannot cover"), "{reason}");
            }
            other => panic!("expected InvalidParams for shallow budget, got {other:?}"),
        }
    }

    #[test]
    fn bootstrap_end_to_end_refreshes_budget() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| ((i * 7 % 13) as f64 / 13.0) - 0.5).collect();
        // An exhausted ciphertext at level 1.
        let pt = ctx.encode(&vals, ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        assert_eq!(ct.level(), 1);
        let refreshed = booter.bootstrap(&ctx, &ct, &keys);
        assert!(
            refreshed.level() > ct.level() + 2,
            "bootstrap must refresh the budget: got level {}",
            refreshed.level()
        );
        // The analytic noise estimate must survive the pipeline (finite and
        // accounted against the refreshed chain's budget).
        assert!(refreshed.noise_estimate_bits().is_finite());
        assert!(
            ctx.budget_bits(&refreshed) > 0.0,
            "refreshed ciphertext must report usable budget"
        );
        let got = ctx.decode(&ctx.decrypt(&refreshed, &sk), slots);
        for (g, e) in got.iter().zip(&vals) {
            assert!(
                (g - e).abs() < 0.05,
                "bootstrapped value mismatch: {g} vs {e}"
            );
        }
    }
}

