//! Functional CKKS bootstrapping.
//!
//! An executable implementation of the pipeline [`crate::BootstrapPlan`]
//! models, over the `cl-ckks` library at test-scale parameters:
//!
//! 1. **ModRaise** — lift the exhausted level-1 ciphertext to the full
//!    modulus chain. Decryption then yields `m + q0·I(X)` for an integer
//!    polynomial `I` bounded by the secret key's Hamming weight.
//! 2. **CoeffToSlot** — a homomorphic linear transform with the inverse
//!    special-FFT matrix, moving polynomial coefficients into slots (the
//!    encoder's coefficient layout makes this transform C-linear, so a
//!    single dense transform suffices at test scale).
//! 3. **EvalMod** — remove the `q0·I` term by evaluating
//!    `(q0/2π)·sin(2πx/q0)` on each slot: a low-degree Taylor expansion of
//!    `exp(2πi·x/(q0·2^r))` followed by `r` repeated squarings (the
//!    double-angle iteration of the state-of-the-art algorithm \[11\]),
//!    applied separately to the real and imaginary slot components.
//! 4. **SlotToCoeff** — the forward special-FFT transform back to
//!    coefficients.
//!
//! The result is a ciphertext of the *same message* at a much higher level
//! — a refreshed multiplicative budget (Fig. 2).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

use cl_ckks::{
    Ciphertext, CkksContext, CompactKeySwitchKey, FheError, FheResult, GuardrailPolicy,
    HintCache, HintId, KeySwitchKey, Plaintext, SecretKey,
};
use cl_math::Complex;
use rand::Rng;

/// Key material for one bootstrapping configuration: rotation keys for the
/// BSGS baby/giant steps, a conjugation key, and a relinearization key.
///
/// Every key is held in its **compact** resident form
/// ([`CompactKeySwitchKey`]: seed + `k0` halves); the materialized form a
/// keyswitch actually consumes is expanded on demand through a bounded
/// [`HintCache`] — by default the process-wide [`HintCache::global`], so
/// concurrent bootstraps (and tenants) share one hot-hint budget. The
/// accessors therefore return `Arc<KeySwitchKey>` and are fallible: a
/// cache miss runs the seeded generator and re-verifies the integrity
/// digest end to end.
#[derive(Debug)]
pub struct BootstrapKeys {
    relin: CompactKeySwitchKey,
    conj: CompactKeySwitchKey,
    /// Keyed by **canonical** step (`step.rem_euclid(slots)`), so every
    /// congruent spelling of a rotation — `-k`, `slots - k`, `k + slots` —
    /// resolves to the same key.
    rotations: HashMap<i64, CompactKeySwitchKey>,
    /// Rotation-group order (`n/2`), the modulus of step canonicalization.
    /// Derived from the context at construction, not serialized.
    slots: usize,
    /// `None` = the process-wide [`HintCache::global`].
    cache: Option<Arc<HintCache>>,
}

impl BootstrapKeys {
    /// Generates keyswitch keys for an explicit set of rotation steps (plus
    /// the relinearization and conjugation keys every bootstrap needs),
    /// keeping only the compact form resident. Steps are canonicalized to
    /// `[0, slots)` first — congruent spellings (`-k` vs `slots - k`) share
    /// one key — and step 0 is skipped (the identity rotation needs no
    /// key).
    pub fn generate<R: Rng + ?Sized>(
        ctx: &CkksContext,
        sk: &SecretKey,
        kind: cl_ckks::KeySwitchKind,
        steps: &[i64],
        rng: &mut R,
    ) -> Self {
        let slots = ctx.params().slots();
        let mut uniq: Vec<i64> = steps
            .iter()
            .map(|&d| cl_math::canonical_rotation_step(d, slots))
            .filter(|&d| d != 0)
            .collect();
        uniq.sort_unstable();
        uniq.dedup();
        let rotations = uniq
            .into_iter()
            .map(|d| (d, ctx.rotation_keygen(sk, d, kind, rng).to_compact()))
            .collect();
        Self {
            relin: ctx.relin_keygen(sk, kind, rng).to_compact(),
            conj: ctx.conjugation_keygen(sk, kind, rng).to_compact(),
            rotations,
            slots,
            cache: None,
        }
    }

    /// Routes this bundle's expansions through `cache` instead of the
    /// process-wide [`HintCache::global`] — for tests and benches that need
    /// an isolated budget.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<HintCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The hot-hint cache this bundle expands through.
    pub fn hint_cache(&self) -> &HintCache {
        match &self.cache {
            Some(c) => c,
            None => HintCache::global(),
        }
    }

    /// The materialized rotation key for `step`, from the hot-hint cache.
    ///
    /// # Errors
    ///
    /// [`FheError::MissingKey`] naming the step when no key was generated
    /// for it; [`FheError::CorruptKey`] when expansion fails the integrity
    /// digest.
    pub fn try_rot_key(&self, ctx: &CkksContext, step: i64) -> FheResult<Arc<KeySwitchKey>> {
        self.hint_cache().get_or_expand(ctx, self.rot_compact(step)?)
    }

    /// The materialized relinearization key, from the hot-hint cache.
    ///
    /// # Errors
    ///
    /// [`FheError::CorruptKey`] when expansion fails the integrity digest.
    pub fn try_relin(&self, ctx: &CkksContext) -> FheResult<Arc<KeySwitchKey>> {
        self.hint_cache().get_or_expand(ctx, &self.relin)
    }

    /// The materialized conjugation key, from the hot-hint cache.
    ///
    /// # Errors
    ///
    /// [`FheError::CorruptKey`] when expansion fails the integrity digest.
    pub fn try_conj(&self, ctx: &CkksContext) -> FheResult<Arc<KeySwitchKey>> {
        self.hint_cache().get_or_expand(ctx, &self.conj)
    }

    /// The compact relinearization key.
    pub fn relin_compact(&self) -> &CompactKeySwitchKey {
        &self.relin
    }

    /// The compact conjugation key.
    pub fn conj_compact(&self) -> &CompactKeySwitchKey {
        &self.conj
    }

    /// The compact rotation key for `step`, in O(1). The lookup
    /// canonicalizes first, so any congruent spelling of a held rotation —
    /// negative, or offset by a multiple of the slot count — resolves to
    /// the same key.
    ///
    /// # Errors
    ///
    /// [`FheError::MissingKey`] naming the step when no key was generated
    /// for its congruence class.
    pub fn rot_compact(&self, step: i64) -> FheResult<&CompactKeySwitchKey> {
        let canon = cl_math::canonical_rotation_step(step, self.slots);
        self.rotations
            .get(&canon)
            .ok_or_else(|| FheError::MissingKey {
                what: format!("rotation key for step {step} (canonical {canon})"),
            })
    }

    /// Every rotation step this bundle holds a key for, sorted.
    pub fn rotation_steps(&self) -> Vec<i64> {
        let mut steps: Vec<i64> = self.rotations.keys().copied().collect();
        steps.sort_unstable();
        steps
    }

    /// Bytes the bundle keeps resident in compact form (`k0` halves only,
    /// across every key). The materialized working set on top of this is
    /// whatever the hot-hint cache currently holds.
    pub fn compact_resident_bytes(&self) -> usize {
        self.relin.resident_bytes()
            + self.conj.resident_bytes()
            + self.rotations.values().map(|k| k.resident_bytes()).sum::<usize>()
    }

    /// Serializes the bundle: a checksummed framing section (rotation
    /// steps and nested blob lengths) followed by one seeded
    /// [`KeySwitchKey`] blob per key (relin, conjugation, then rotations in
    /// step order). Every nested blob carries its own header, fingerprint,
    /// and per-limb checksums.
    pub fn serialize(&self, ctx: &CkksContext) -> Vec<u8> {
        use cl_ckks::serialize::{fnv1a, put_i64, put_u32, put_u64, write_header, ObjectTag};
        let steps = self.rotation_steps();
        let relin = ctx.serialize_compact_keyswitch_key(&self.relin);
        let conj = ctx.serialize_compact_keyswitch_key(&self.conj);
        let rots: Vec<Vec<u8>> = steps
            .iter()
            .map(|s| {
                ctx.serialize_compact_keyswitch_key(
                    self.rotations
                        .get(s)
                        .expect("steps enumerate this map's keys"),
                )
            })
            .collect();
        let mut out = Vec::new();
        write_header(&mut out, ObjectTag::BootstrapKeys, ctx.params_fingerprint());
        let meta_start = out.len();
        put_u32(&mut out, steps.len() as u32);
        for &s in &steps {
            put_i64(&mut out, s);
        }
        put_u32(&mut out, relin.len() as u32);
        put_u32(&mut out, conj.len() as u32);
        for blob in &rots {
            put_u32(&mut out, blob.len() as u32);
        }
        let cksum = fnv1a(&out[meta_start..]);
        put_u64(&mut out, cksum);
        out.extend_from_slice(&relin);
        out.extend_from_slice(&conj);
        for blob in &rots {
            out.extend_from_slice(blob);
        }
        out
    }

    /// Loads a bundle written by [`BootstrapKeys::serialize`], verifying
    /// the framing checksum and every nested key's fingerprint and limb
    /// checksums. Keys load straight into compact form — no pseudo-random
    /// half is regenerated here; each key's end-to-end integrity digest is
    /// verified on first expansion instead.
    ///
    /// # Errors
    ///
    /// [`cl_ckks::FheError::Serialization`],
    /// [`cl_ckks::FheError::ChecksumMismatch`], or
    /// [`cl_ckks::FheError::ParamsMismatch`].
    pub fn try_deserialize(ctx: &CkksContext, bytes: &[u8]) -> FheResult<Self> {
        use cl_ckks::serialize::{fnv1a, ObjectTag, Reader};
        let mut r = Reader::new("load_bootstrap_keys", bytes);
        r.read_header(ObjectTag::BootstrapKeys, ctx.params_fingerprint())?;
        let meta_start = r.pos();
        let num_rot = r.u32()? as usize;
        let mut steps = Vec::with_capacity(num_rot);
        for _ in 0..num_rot {
            steps.push(r.i64()?);
        }
        let relin_len = r.u32()? as usize;
        let conj_len = r.u32()? as usize;
        let mut rot_lens = Vec::with_capacity(num_rot);
        for _ in 0..num_rot {
            rot_lens.push(r.u32()? as usize);
        }
        let computed = fnv1a(r.region_since(meta_start));
        let stored = r.u64()?;
        if stored != computed {
            return Err(FheError::ChecksumMismatch {
                op: "load_bootstrap_keys",
                section: "bundle framing".into(),
                stored,
                computed,
            });
        }
        let relin = ctx.try_deserialize_compact_keyswitch_key(r.take(relin_len)?)?;
        let conj = ctx.try_deserialize_compact_keyswitch_key(r.take(conj_len)?)?;
        let slots = ctx.params().slots();
        let mut rotations = HashMap::with_capacity(num_rot);
        for (step, len) in steps.into_iter().zip(rot_lens) {
            // Canonicalize on load: bundles written before steps were
            // normalized may carry negative spellings; congruent duplicates
            // collapse onto one key (they implement the same automorphism).
            rotations.insert(
                cl_math::canonical_rotation_step(step, slots),
                ctx.try_deserialize_compact_keyswitch_key(r.take(len)?)?,
            );
        }
        r.finish()?;
        Ok(Self {
            relin,
            conj,
            rotations,
            slots,
            cache: None,
        })
    }
}

/// The bootstrap pipeline as an explicit state machine.
///
/// [`Bootstrapper::try_step`] advances one stage per call:
///
/// `Start → Raised → Split → EvalRe → EvalBoth → Done`
///
/// Each state owns only ciphertexts plus the input scale, so it can be
/// serialized at any stage boundary ([`BootState::serialize`]) — the unit
/// of progress the cl-runtime checkpoint/resume executor persists, letting
/// a killed process resume a half-finished bootstrap instead of repeating
/// its full depth.
#[derive(Debug, Clone)]
pub enum BootState {
    /// Input: an exhausted ciphertext awaiting ModRaise.
    Start {
        /// The level-1 ciphertext to refresh.
        ct: Ciphertext,
    },
    /// After ModRaise: lifted to the full modulus chain.
    Raised {
        /// The raised ciphertext (decrypts to `m·Δ + q0·I`).
        raised: Ciphertext,
        /// The input ciphertext's scale `Δ` (needed to undo the `q0`
        /// normalization at the end).
        orig_scale: f64,
    },
    /// After CoeffToSlot and the real/imaginary split.
    Split {
        /// Real slot component, normalized to `y = value/q0`.
        y_re: Ciphertext,
        /// Imaginary slot component, same normalization.
        y_im: Ciphertext,
        /// The input scale.
        orig_scale: f64,
    },
    /// After EvalMod on the real component.
    EvalRe {
        /// `sin`-reduced real component.
        m_re: Ciphertext,
        /// Imaginary component still awaiting EvalMod.
        y_im: Ciphertext,
        /// The input scale.
        orig_scale: f64,
    },
    /// After EvalMod on both components.
    EvalBoth {
        /// `sin`-reduced real component.
        m_re: Ciphertext,
        /// `sin`-reduced imaginary component.
        m_im: Ciphertext,
        /// The input scale.
        orig_scale: f64,
    },
    /// Pipeline complete.
    Done {
        /// The refreshed ciphertext.
        ct: Ciphertext,
    },
}

impl BootState {
    /// Number of `try_step` transitions from [`BootState::Start`] to
    /// [`BootState::Done`].
    pub const NUM_STAGES: usize = 5;

    /// 0-based index of the current stage (`Start` = 0, `Done` = 5).
    pub fn stage_index(&self) -> usize {
        match self {
            BootState::Start { .. } => 0,
            BootState::Raised { .. } => 1,
            BootState::Split { .. } => 2,
            BootState::EvalRe { .. } => 3,
            BootState::EvalBoth { .. } => 4,
            BootState::Done { .. } => 5,
        }
    }

    /// Human-readable stage name for telemetry and errors.
    pub fn stage_name(&self) -> &'static str {
        match self {
            BootState::Start { .. } => "Start",
            BootState::Raised { .. } => "Raised",
            BootState::Split { .. } => "Split",
            BootState::EvalRe { .. } => "EvalRe",
            BootState::EvalBoth { .. } => "EvalBoth",
            BootState::Done { .. } => "Done",
        }
    }

    /// Whether the pipeline has produced its output.
    pub fn is_done(&self) -> bool {
        matches!(self, BootState::Done { .. })
    }

    /// The ciphertexts this state owns, in a stage-defined order.
    pub fn ciphertexts(&self) -> Vec<&Ciphertext> {
        match self {
            BootState::Start { ct } | BootState::Done { ct } => vec![ct],
            BootState::Raised { raised, .. } => vec![raised],
            BootState::Split { y_re, y_im, .. } => vec![y_re, y_im],
            BootState::EvalRe { m_re, y_im, .. } => vec![m_re, y_im],
            BootState::EvalBoth { m_re, m_im, .. } => vec![m_re, m_im],
        }
    }

    /// Mutable access to the state's ciphertexts (same order as
    /// [`BootState::ciphertexts`]). Exists for fault-injection harnesses
    /// that corrupt in-flight bootstrap state.
    pub fn ciphertexts_mut(&mut self) -> Vec<&mut Ciphertext> {
        match self {
            BootState::Start { ct } | BootState::Done { ct } => vec![ct],
            BootState::Raised { raised, .. } => vec![raised],
            BootState::Split { y_re, y_im, .. } => vec![y_re, y_im],
            BootState::EvalRe { m_re, y_im, .. } => vec![m_re, y_im],
            BootState::EvalBoth { m_re, m_im, .. } => vec![m_re, m_im],
        }
    }

    fn orig_scale(&self) -> f64 {
        match self {
            BootState::Start { .. } | BootState::Done { .. } => 0.0,
            BootState::Raised { orig_scale, .. }
            | BootState::Split { orig_scale, .. }
            | BootState::EvalRe { orig_scale, .. }
            | BootState::EvalBoth { orig_scale, .. } => *orig_scale,
        }
    }

    /// Serializes the state: a checksummed `(stage, orig_scale, blob
    /// lengths)` framing section followed by the stage's ciphertext blobs
    /// (each self-checking; see [`CkksContext::serialize_ciphertext`]).
    /// Headerless — designed to be embedded in a larger checkpoint record.
    pub fn serialize(&self, ctx: &CkksContext) -> Vec<u8> {
        use cl_ckks::serialize::{fnv1a, put_f64, put_u32, put_u64, put_u8};
        let blobs: Vec<Vec<u8>> = self
            .ciphertexts()
            .iter()
            .map(|ct| ctx.serialize_ciphertext(ct))
            .collect();
        let mut out = Vec::new();
        let meta_start = out.len();
        put_u8(&mut out, self.stage_index() as u8);
        put_f64(&mut out, self.orig_scale());
        put_u8(&mut out, blobs.len() as u8);
        for blob in &blobs {
            put_u32(&mut out, blob.len() as u32);
        }
        let cksum = fnv1a(&out[meta_start..]);
        put_u64(&mut out, cksum);
        for blob in &blobs {
            out.extend_from_slice(blob);
        }
        out
    }

    /// Loads a state written by [`BootState::serialize`].
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`], [`FheError::ChecksumMismatch`], or
    /// [`FheError::ParamsMismatch`].
    pub fn try_deserialize(ctx: &CkksContext, bytes: &[u8]) -> FheResult<Self> {
        use cl_ckks::serialize::{fnv1a, Reader};
        let mut r = Reader::new("load_boot_state", bytes);
        let meta_start = r.pos();
        let stage = r.u8()?;
        let orig_scale = r.f64()?;
        let count = r.u8()? as usize;
        let mut lens = Vec::with_capacity(count);
        for _ in 0..count {
            lens.push(r.u32()? as usize);
        }
        let computed = fnv1a(r.region_since(meta_start));
        let stored = r.u64()?;
        if stored != computed {
            return Err(FheError::ChecksumMismatch {
                op: "load_boot_state",
                section: "boot-state framing".into(),
                stored,
                computed,
            });
        }
        let mut cts = Vec::with_capacity(count);
        for len in lens {
            cts.push(ctx.try_deserialize_ciphertext(r.take(len)?)?);
        }
        r.finish()?;
        let want = match stage {
            0 | 5 => 1,
            1 => 1,
            2..=4 => 2,
            _ => {
                return Err(FheError::Serialization {
                    op: "load_boot_state",
                    reason: format!("unknown bootstrap stage {stage}"),
                })
            }
        };
        if cts.len() != want {
            return Err(FheError::Serialization {
                op: "load_boot_state",
                reason: format!(
                    "stage {stage} carries {} ciphertexts, expected {want}",
                    cts.len()
                ),
            });
        }
        let mut it = cts.into_iter();
        let mut next = || it.next().expect("count checked above");
        Ok(match stage {
            0 => BootState::Start { ct: next() },
            1 => BootState::Raised {
                raised: next(),
                orig_scale,
            },
            2 => BootState::Split {
                y_re: next(),
                y_im: next(),
                orig_scale,
            },
            3 => BootState::EvalRe {
                m_re: next(),
                y_im: next(),
                orig_scale,
            },
            4 => BootState::EvalBoth {
                m_re: next(),
                m_im: next(),
                orig_scale,
            },
            _ => BootState::Done { ct: next() },
        })
    }
}

/// A functional bootstrapper: precomputed transform matrices plus the
/// EvalMod configuration.
pub struct Bootstrapper {
    /// Diagonals of the CoeffToSlot (inverse special FFT) matrix.
    cts_diags: Vec<(i64, Vec<Complex>)>,
    /// Diagonals of the SlotToCoeff (forward special FFT) matrix.
    sts_diags: Vec<(i64, Vec<Complex>)>,
    /// Double-angle iterations.
    r: u32,
    /// Taylor degree for `exp(2πi·y/2^r)`.
    taylor_degree: usize,
    /// Input range bound `|y| <= k` for EvalMod.
    k_bound: f64,
    /// Encoded transform plaintexts, cached per `(stage, level)`.
    precompute: BootstrapPrecompute,
}

impl std::fmt::Debug for Bootstrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bootstrapper")
            .field("r", &self.r)
            .field("taylor_degree", &self.taylor_degree)
            .field("k_bound", &self.k_bound)
            .finish()
    }
}

/// Which of the two bootstrap linear transforms a cached precompute
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformStage {
    /// The inverse special-FFT (coefficients into slots).
    CoeffToSlot,
    /// The forward special-FFT (slots back into coefficients).
    SlotToCoeff,
}

/// A linear transform arranged for baby-step/giant-step evaluation, with
/// every diagonal plaintext already encoded at a fixed level.
///
/// Writing each diagonal index `d = j·b + i` with `b =
/// ceil(sqrt(#diagonals))`, the dense sum `Σ_d diag_d ⊙ rot_d(v)`
/// regroups as
/// `Σ_j rot_{j·b}( Σ_i pt_{j,i} ⊙ rot_i(v) )` where
/// `pt_{j,i}[s] = diag_{j·b+i}[(s − j·b) mod m]` — only `b` baby
/// rotations of the input plus one giant rotation per group, instead of
/// one rotation per diagonal. The plaintexts are encoded once at
/// construction (scale = the modulus the closing rescale drops), so
/// applying the transform does no encoding at all.
pub struct PrecomputedTransform {
    level: usize,
    /// Distinct baby offsets `i` (may include 0 = the input itself).
    baby_steps: Vec<i64>,
    /// Giant groups: `(giant rotation j·b, [(baby offset i, plaintext)])`.
    giants: Vec<(i64, Vec<(i64, Plaintext)>)>,
}

impl std::fmt::Debug for PrecomputedTransform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrecomputedTransform")
            .field("level", &self.level)
            .field("baby_steps", &self.baby_steps)
            .field("giants", &self.giants.len())
            .finish()
    }
}

/// The BSGS baby-step count for a transform with `n_diags` nonzero
/// diagonals: `ceil(sqrt(n_diags))` (matching
/// `BootstrapPlan::bsgs_rotations`), independent of level so the
/// rotation-key set is stable across the modulus chain.
fn bsgs_baby(n_diags: usize) -> i64 {
    ((n_diags as f64).sqrt().ceil() as i64).max(1)
}

impl PrecomputedTransform {
    /// Encodes `diags` (generalized diagonals, indices in `[0, m)`) for
    /// BSGS evaluation on level-`level` ciphertexts.
    ///
    /// # Panics
    ///
    /// Panics if `level < 2` (the transform's closing rescale needs a
    /// modulus to drop) or a diagonal's length differs from the slot count.
    pub fn new(ctx: &CkksContext, diags: &[(i64, Vec<Complex>)], level: usize) -> Self {
        assert!(level >= 2, "BSGS transform needs a level to rescale into");
        let m = ctx.params().slots();
        let baby = bsgs_baby(diags.len());
        // Encoded at exactly the scale of the modulus the closing rescale
        // drops: the transform then preserves the ciphertext scale exactly
        // (any deviation would be amplified exponentially by EvalMod's
        // squaring chain).
        let scale = ctx.rns().modulus_value((level - 1) as u32) as f64;
        let mut baby_set = BTreeSet::new();
        let mut groups: BTreeMap<i64, Vec<(i64, Plaintext)>> = BTreeMap::new();
        for (d, diag) in diags {
            assert_eq!(diag.len(), m, "diagonal length must equal the slot count");
            let i = d % baby;
            let jb = d - i;
            baby_set.insert(i);
            // pt[s] = diag[(s − j·b) mod m]: the giant rotation moves the
            // plaintext weights back over the right slots.
            let shift = (jb as usize) % m;
            let rot: Vec<Complex> = (0..m).map(|s| diag[(s + m - shift) % m]).collect();
            groups
                .entry(jb)
                .or_default()
                .push((i, ctx.encode_complex(&rot, scale, level)));
        }
        Self {
            level,
            baby_steps: baby_set.into_iter().collect(),
            giants: groups.into_iter().collect(),
        }
    }

    /// The ciphertext level this precompute was encoded for.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Every nonzero rotation step the transform needs a key for (baby
    /// offsets plus giant steps), sorted.
    pub fn required_steps(&self) -> Vec<i64> {
        let mut steps: BTreeSet<i64> = self.baby_steps.iter().copied().collect();
        steps.extend(self.giants.iter().map(|(jb, _)| *jb));
        steps.remove(&0);
        steps.into_iter().collect()
    }
}

/// Cache of [`PrecomputedTransform`]s keyed by `(stage, level)`. Filled
/// eagerly at [`Bootstrapper::keygen`] for the two levels
/// [`Bootstrapper::try_bootstrap`] visits; misses (e.g. a transform applied
/// at a non-standard level) build and cache lazily.
#[derive(Default)]
pub struct BootstrapPrecompute {
    cache: Mutex<HashMap<(TransformStage, usize), Arc<PrecomputedTransform>>>,
}

impl std::fmt::Debug for BootstrapPrecompute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.cache.lock().map(|c| c.len()).unwrap_or(0);
        f.debug_struct("BootstrapPrecompute").field("entries", &n).finish()
    }
}

impl BootstrapPrecompute {
    /// Returns the cached precompute for `(stage, level)`, building and
    /// inserting it from `diags` on a miss.
    pub fn get_or_build(
        &self,
        ctx: &CkksContext,
        stage: TransformStage,
        level: usize,
        diags: &[(i64, Vec<Complex>)],
    ) -> Arc<PrecomputedTransform> {
        let key = (stage, level);
        if let Some(hit) = self.lock().get(&key) {
            return hit.clone();
        }
        // Encode outside the lock; a racing builder just wastes one encode.
        let built = Arc::new(PrecomputedTransform::new(ctx, diags, level));
        self.lock().entry(key).or_insert(built).clone()
    }

    /// Number of cached `(stage, level)` entries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<(TransformStage, usize), Arc<PrecomputedTransform>>> {
        self.cache
            .lock()
            .expect("precompute cache poisoned: a panic while encoding plaintexts")
    }
}

/// Applies a precomputed BSGS linear transform to `ct` and rescales.
/// Consumes one level.
///
/// All baby rotations share one hoisted decomposition of the input
/// ([`CkksContext::try_rotate_hoisted_many`]), and the giant-step outputs
/// are accumulated in the extended basis with a single closing ModDown
/// ([`CkksContext::try_rotate_sum`]) — the double-hoisted evaluation
/// CraterLake's bootstrap schedule amortizes its keyswitch traffic with
/// (Sec. 6).
///
/// The transform's rotation schedule is known up front (babies, then
/// giants), so it is installed into the bundle's [`HintCache`] as a Belady
/// eviction oracle, and the giant-group hints are prefetched right after
/// the hoisted baby rotations fetch theirs — the next hoisted-rotation
/// group's hints are warm before the inner sums ask for them, and eviction
/// under pressure discards hints the remaining schedule proves dead.
///
/// # Errors
///
/// [`FheError::LevelMismatch`] when `ct.level() != pre.level()`;
/// [`FheError::MissingKey`] when `keys` lacks a needed baby/giant step;
/// [`FheError::InvalidParams`] on a transform with no diagonals;
/// [`FheError::CorruptKey`] when a hint expansion fails its integrity
/// digest; plus any guardrail failure from the underlying ops.
pub fn try_bsgs_transform(
    ctx: &CkksContext,
    ct: &Ciphertext,
    pre: &PrecomputedTransform,
    keys: &BootstrapKeys,
) -> FheResult<Ciphertext> {
    const OP: &str = "linear_transform";
    if ct.level() != pre.level {
        return Err(FheError::LevelMismatch {
            op: OP,
            got: ct.level(),
            want: pre.level,
        });
    }
    if pre.giants.is_empty() {
        return Err(FheError::InvalidParams {
            op: OP,
            reason: "transform has no nonzero diagonals".into(),
        });
    }
    let nonzero: Vec<i64> = pre.baby_steps.iter().copied().filter(|&i| i != 0).collect();
    let giant_steps: Vec<i64> = pre
        .giants
        .iter()
        .map(|(jb, _)| *jb)
        .filter(|&jb| jb != 0)
        .collect();
    // The full access schedule is known before the first fetch: install it
    // as the cache's Belady oracle.
    let cache = keys.hint_cache();
    let mut schedule: Vec<HintId> = Vec::with_capacity(nonzero.len() + giant_steps.len());
    for &step in nonzero.iter().chain(&giant_steps) {
        schedule.push(HintCache::hint_id(ctx, keys.rot_compact(step)?));
    }
    cache.plan(schedule);
    // Baby rotations: one hoisted ModUp serves every step.
    let baby_arcs: Vec<Arc<KeySwitchKey>> = nonzero
        .iter()
        .map(|&i| keys.try_rot_key(ctx, i))
        .collect::<FheResult<_>>()?;
    let baby_keys: Vec<&KeySwitchKey> = baby_arcs.iter().map(Arc::as_ref).collect();
    let rotated = ctx.try_rotate_hoisted_many(ct, &nonzero, &baby_keys)?;
    drop(baby_keys);
    drop(baby_arcs);
    // The babies are done with their hints; warm the next hoisted-rotation
    // group (the giant steps) before the inner sums run.
    for &jb in &giant_steps {
        cache.prefetch(ctx, keys.rot_compact(jb)?)?;
    }
    let mut babies: HashMap<i64, &Ciphertext> =
        nonzero.iter().copied().zip(rotated.iter()).collect();
    babies.insert(0, ct);
    // Inner sums: plaintext-multiply each baby into its giant group.
    let mut inners: Vec<(Ciphertext, i64)> = Vec::with_capacity(pre.giants.len());
    for (jb, terms) in &pre.giants {
        let mut acc: Option<Ciphertext> = None;
        for (i, pt) in terms {
            let baby = babies
                .get(i)
                .expect("baby offsets and giant groups come from the same diagonal split");
            let term = ctx.try_mul_plain(baby, pt)?;
            acc = Some(match acc {
                None => term,
                Some(a) => ctx.try_add(&a, &term)?,
            });
        }
        let inner = acc.expect("giant groups are non-empty by construction");
        inners.push((inner, *jb));
    }
    // Giant rotations: extended-basis accumulation, one closing ModDown.
    let giant_arcs: Vec<Option<Arc<KeySwitchKey>>> = inners
        .iter()
        .map(|(_, jb)| {
            Ok(if *jb == 0 {
                None
            } else {
                Some(keys.try_rot_key(ctx, *jb)?)
            })
        })
        .collect::<FheResult<_>>()?;
    let giant_terms: Vec<(&Ciphertext, i64, Option<&KeySwitchKey>)> = inners
        .iter()
        .zip(&giant_arcs)
        .map(|((inner, jb), key)| (inner, *jb, key.as_deref()))
        .collect();
    let summed = ctx.try_rotate_sum(&giant_terms)?;
    cache.clear_plan();
    ctx.try_rescale(&summed)
}

/// Extracts the generalized diagonals of an `m x m` complex matrix given as
/// a linear map (closure on basis vectors). Diagonal `d` holds
/// `M[j][(j+d) mod m]`.
fn matrix_diagonals<F>(m: usize, apply: F) -> Vec<(i64, Vec<Complex>)>
where
    F: Fn(&[Complex]) -> Vec<Complex>,
{
    // Columns of the matrix: apply to unit vectors.
    let mut cols = Vec::with_capacity(m);
    for k in 0..m {
        let mut e = vec![Complex::default(); m];
        e[k] = Complex::new(1.0, 0.0);
        cols.push(apply(&e));
    }
    let mut diags = Vec::new();
    for d in 0..m {
        let mut diag = vec![Complex::default(); m];
        let mut nonzero = false;
        for j in 0..m {
            let v = cols[(j + d) % m][j];
            if v.abs() > 1e-12 {
                nonzero = true;
            }
            diag[j] = v;
        }
        if nonzero {
            diags.push((d as i64, diag));
        }
    }
    diags
}

impl Bootstrapper {
    /// Builds a bootstrapper for the given context. `h` is the secret key's
    /// Hamming weight (bounds the EvalMod range).
    pub fn new(ctx: &CkksContext, h: usize) -> Self {
        let slots = ctx.params().slots();
        let fft = cl_math::SpecialFft::new(slots);
        // CoeffToSlot: slots(u) = iFFT(z) — C-linear in z.
        let cts_diags = matrix_diagonals(slots, |z| {
            let mut v = z.to_vec();
            fft.inverse(&mut v);
            v
        });
        // SlotToCoeff: z = FFT(u).
        let sts_diags = matrix_diagonals(slots, |u| {
            let mut v = u.to_vec();
            fft.forward(&mut v);
            v
        });
        // |I| <= (h+1)/2 plus the message's q0 fraction.
        let k_bound = (h as f64 + 1.0) / 2.0 + 1.0;
        // Choose r so the Taylor argument 2π·k/2^r stays below ~0.8.
        let mut r = 0u32;
        while 2.0 * std::f64::consts::PI * k_bound / 2f64.powi(r as i32) > 0.8 {
            r += 1;
        }
        Self {
            cts_diags,
            sts_diags,
            r,
            taylor_degree: 7,
            k_bound,
            precompute: BootstrapPrecompute::default(),
        }
    }

    /// Multiplicative depth the pipeline consumes: CoeffToSlot (1) +
    /// real/imaginary split (1) + Taylor powers (3) + `r` squarings +
    /// final constant (1) + SlotToCoeff (1).
    pub fn depth(&self) -> usize {
        7 + self.r as usize
    }

    /// Generates the keyswitch keys bootstrapping needs — only the BSGS
    /// baby/giant steps of the two transforms, not one key per diagonal —
    /// and eagerly fills the [`BootstrapPrecompute`] cache for the two
    /// levels [`Bootstrapper::try_bootstrap`] visits, so no transform
    /// plaintext is encoded on the bootstrap hot path.
    pub fn keygen<R: Rng + ?Sized>(
        &self,
        ctx: &CkksContext,
        sk: &SecretKey,
        kind: cl_ckks::KeySwitchKind,
        rng: &mut R,
    ) -> BootstrapKeys {
        let mut steps = BTreeSet::new();
        for diags in [&self.cts_diags, &self.sts_diags] {
            let baby = bsgs_baby(diags.len());
            for (d, _) in diags {
                let i = d % baby;
                steps.insert(i);
                steps.insert(d - i);
            }
        }
        steps.remove(&0);
        let l_max = ctx.max_level();
        if l_max > self.depth() + 1 {
            // CoeffToSlot runs on the raised ciphertext at `l_max`;
            // SlotToCoeff after the full EvalMod depth.
            self.precomputed(ctx, TransformStage::CoeffToSlot, l_max);
            self.precomputed(ctx, TransformStage::SlotToCoeff, l_max - self.depth() - 1);
        }
        let steps: Vec<i64> = steps.into_iter().collect();
        BootstrapKeys::generate(ctx, sk, kind, &steps, rng)
    }

    /// Read access to the `(stage, level)` plaintext cache.
    pub fn precompute(&self) -> &BootstrapPrecompute {
        &self.precompute
    }

    fn precomputed(
        &self,
        ctx: &CkksContext,
        stage: TransformStage,
        level: usize,
    ) -> Arc<PrecomputedTransform> {
        let diags = match stage {
            TransformStage::CoeffToSlot => &self.cts_diags,
            TransformStage::SlotToCoeff => &self.sts_diags,
        };
        self.precompute.get_or_build(ctx, stage, level, diags)
    }

    /// Homomorphic dense linear transform: `Σ_d diag_d ⊙ rot_d(ct)`,
    /// evaluated in BSGS form over cached precomputed plaintexts.
    /// Consumes one level.
    fn try_linear_transform(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        stage: TransformStage,
        keys: &BootstrapKeys,
    ) -> FheResult<Ciphertext> {
        let pre = self.precomputed(ctx, stage, ct.level());
        try_bsgs_transform(ctx, ct, &pre, keys)
    }

    /// EvalMod on the *real part* interpretation: input `ct` decodes to
    /// real slot values `y` with `|y| <= k_bound`; output decodes to
    /// `(1/2π)·sin(2π y)` at the same scale.
    fn try_eval_sin(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        keys: &BootstrapKeys,
    ) -> FheResult<Ciphertext> {
        let _span = cl_trace::span("eval_mod");
        // One cache fetch serves the whole squaring chain.
        let relin = keys.try_relin(ctx)?;
        let relin = relin.as_ref();
        let two_pi = 2.0 * std::f64::consts::PI;
        let theta = two_pi / 2f64.powi(self.r as i32);
        // Taylor coefficients of exp(i·theta·y) in y.
        let mut coeffs = Vec::with_capacity(self.taylor_degree + 1);
        let mut term = Complex::new(1.0, 0.0);
        coeffs.push(term);
        for k in 1..=self.taylor_degree {
            term = term * Complex::new(0.0, theta) / k as f64;
            coeffs.push(term);
        }
        // Powers y^1..y^7 with depth 3: y2=y*y, y3=y*y2, y4=y2*y2,
        // y5=y2*y3, y6=y3*y3, y7=y3*y4.
        let y1 = ct.clone();
        let y2 = ctx.try_rescale(&ctx.try_mul(&y1, &y1, relin)?)?;
        let y3 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y1, y2.level())?, &y2, relin)?)?;
        let y4 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y2, y2.level())?, &y2, relin)?)?;
        let y5 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y2, y3.level())?, &y3, relin)?)?;
        let y6 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y3, y3.level())?, &y3, relin)?)?;
        let y7 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y3, y4.level())?, &y4, relin)?)?;
        // Align all powers at the deepest level/scale and combine:
        // E0 = sum_k coeffs[k] * y^k.
        let target_level = y7.level();
        let powers = [y1, y2, y3, y4, y5, y6, y7];
        let mut acc: Option<Ciphertext> = None;
        for (k, p) in powers.iter().enumerate() {
            let p = ctx.try_mod_drop(p, target_level)?;
            // Encode each Taylor coefficient at the scale that makes the
            // product land, after the closing rescale, exactly on the
            // default scale — the squaring chain then cannot drift.
            let q_drop = ctx.rns().modulus_value((target_level - 1) as u32) as f64;
            let desired = ctx.default_scale() * q_drop;
            let coeff_scale = desired / p.scale();
            let slots = ctx.params().slots();
            let cvec = vec![coeffs[k + 1]; slots];
            let pt = ctx.encode_complex(&cvec, coeff_scale, target_level);
            let term = ctx.try_mul_plain(&p, &pt)?;
            acc = Some(match acc {
                None => term,
                Some(a) => ctx.try_add(&a, &term)?,
            });
        }
        let acc = acc.expect("Taylor sum over a non-empty power basis");
        let mut e = ctx.try_rescale(&acc)?;
        // + coeffs[0] (the constant 1).
        let ones = vec![coeffs[0]; ctx.params().slots()];
        let pt1 = ctx.encode_complex(&ones, e.scale(), e.level());
        e = ctx.try_add_plain(&e, &pt1)?;
        // Double-angle: square r times => exp(2πi·y).
        for _ in 0..self.r {
            e = ctx.try_rescale(&ctx.try_square(&e, relin)?)?;
        }
        // sin(2πy)/(2π) = Re(E * (-i/2π)) * 2 = w + conj(w),
        // w = E * (-i/(4π))... : sin = (E - conj E)/(2i);
        // k*sin = w + conj(w) with w = k·E/(2i) for real k = 1/(2π).
        let k_const = 1.0 / two_pi;
        let w_coeff = Complex::new(0.0, -k_const / 2.0); // k/(2i)
        let slots = ctx.params().slots();
        let q_drop = ctx.rns().modulus_value((e.level() - 1) as u32) as f64;
        let pt = ctx.encode_complex(
            &vec![w_coeff; slots],
            ctx.default_scale() * q_drop / e.scale(),
            e.level(),
        );
        let w = ctx.try_rescale(&ctx.try_mul_plain(&e, &pt)?)?;
        let wc = ctx.try_conjugate(&w, keys.try_conj(ctx)?.as_ref())?;
        ctx.try_add(&w, &wc)
    }

    /// Advances a bootstrap by exactly one stage.
    ///
    /// This is the checkpointable unit of the pipeline: a caller (e.g. the
    /// cl-runtime executor) can serialize the returned [`BootState`]
    /// between stages, survive a crash mid-bootstrap, and resume at the
    /// stage boundary instead of restarting the whole pipeline. Passing a
    /// [`BootState::Done`] state returns it unchanged.
    ///
    /// # Errors
    ///
    /// - [`FheError::InvalidParams`] if the context's budget cannot cover
    ///   the pipeline's depth (see [`Bootstrapper::depth`]), or if the
    ///   context runs the `AutoRescale` guardrail policy (the pipeline
    ///   manages scales explicitly; an auto-inserted rescale would corrupt
    ///   the EvalMod squaring chain).
    /// - [`FheError::MissingKey`] if a rotation key for a transform
    ///   diagonal is absent from `keys`.
    /// - Any error the underlying homomorphic ops report under the
    ///   context's guardrail policy.
    pub fn try_step(
        &self,
        ctx: &CkksContext,
        state: BootState,
        keys: &BootstrapKeys,
    ) -> FheResult<BootState> {
        match state {
            BootState::Start { ct } => self.step_mod_raise(ctx, ct),
            BootState::Raised { raised, orig_scale } => {
                self.step_coeff_to_slot_split(ctx, raised, orig_scale, keys)
            }
            BootState::Split {
                y_re,
                y_im,
                orig_scale,
            } => {
                // ---- EvalMod on the real component.
                let m_re = self.try_eval_sin(ctx, &y_re, keys)?;
                Ok(BootState::EvalRe {
                    m_re,
                    y_im,
                    orig_scale,
                })
            }
            BootState::EvalRe {
                m_re,
                y_im,
                orig_scale,
            } => {
                // ---- EvalMod on the imaginary component, aligned below
                // the real one so the recombine's mod-drops are forward.
                let y_im_aligned =
                    ctx.try_mod_drop(&y_im, m_re.level() + self.r as usize + 4)?;
                let m_im = self.try_eval_sin(ctx, &y_im_aligned, keys)?;
                Ok(BootState::EvalBoth {
                    m_re,
                    m_im,
                    orig_scale,
                })
            }
            BootState::EvalBoth {
                m_re,
                m_im,
                orig_scale,
            } => self.step_recombine(ctx, m_re, m_im, orig_scale, keys),
            done @ BootState::Done { .. } => Ok(done),
        }
    }

    /// Stage 1 — ModRaise: lift residues mod q0 to the full chain.
    fn step_mod_raise(&self, ctx: &CkksContext, ct: Ciphertext) -> FheResult<BootState> {
        let _span = cl_trace::span("mod_raise");
        if matches!(ctx.policy(), GuardrailPolicy::AutoRescale) {
            return Err(FheError::InvalidParams {
                op: "bootstrap",
                reason: "bootstrap manages rescaling explicitly; the AutoRescale \
                         policy would insert extra rescales and corrupt the scale \
                         bookkeeping"
                    .into(),
            });
        }
        let l_max = ctx.max_level();
        if l_max <= self.depth() + 1 {
            return Err(FheError::InvalidParams {
                op: "bootstrap",
                reason: format!(
                    "budget {l_max} cannot cover bootstrap depth {}",
                    self.depth()
                ),
            });
        }
        let rns = ctx.rns();
        let q0 = rns.modulus_value(0) as f64;
        let raise = |poly: &cl_rns::RnsPoly| {
            let mut p = poly.clone();
            rns.from_ntt(&mut p);
            let m0 = rns.modulus(0);
            let signed: Vec<i64> = p.limb(0).iter().map(|&x| m0.lift_centered(x)).collect();
            let mut out = rns.from_signed_coeffs(&signed, &rns.q_basis(l_max));
            rns.to_ntt(&mut out);
            out
        };
        // The raised ciphertext decrypts to `m·Δ + q0·I` with `|I|` bounded
        // by the EvalMod range: its dominant "noise" term is the `q0·I`
        // component EvalMod will remove, so seed the tracked estimate with
        // that magnitude rather than the fresh-encryption default.
        let raised = ctx
            .ciphertext_from_parts(raise(ct.c0()), raise(ct.c1()), l_max, ct.scale())
            .with_noise_bits(
                ct.noise_estimate_bits()
                    .max(q0.log2() + self.k_bound.log2()),
            );
        Ok(BootState::Raised {
            raised,
            orig_scale: ct.scale(),
        })
    }

    /// Stage 2 — CoeffToSlot, reinterpretation, and the real/imaginary
    /// split.
    fn step_coeff_to_slot_split(
        &self,
        ctx: &CkksContext,
        raised: Ciphertext,
        orig_scale: f64,
        keys: &BootstrapKeys,
    ) -> FheResult<BootState> {
        let _span = cl_trace::span("coeff_to_slot");
        let q0 = ctx.rns().modulus_value(0) as f64;
        // ---- CoeffToSlot: slots become u_j = c_j + i·c_{j+slots}, where c
        // are the raised polynomial's coefficients (value m·Δ + q0·I).
        // The factor n/2 from the unnormalized embedding is absorbed by
        // the transform matrix itself (it is exactly the encoder's iFFT).
        let u = self.try_linear_transform(ctx, &raised, TransformStage::CoeffToSlot, keys)?;
        // Reinterpret: the true slot values are (m·Δ + q0·I) and EvalMod
        // wants y = true/q0, so record the scale as u.scale·q0/Δ_in.
        let y_full = u.clone().with_scale(u.scale() * q0 / orig_scale);
        // ---- Split real/imaginary parts.
        let conj = ctx.try_conjugate(&y_full, keys.try_conj(ctx)?.as_ref())?;
        // y_re = (u + conj)/2: the division by 2 is a free scale bump.
        let sum = ctx.try_add(&y_full, &conj)?;
        let y_re = sum.clone().with_scale(sum.scale() * 2.0);
        // y_im = (u - conj)/(2i): plaintext multiply by -i/2.
        let diff = ctx.try_sub(&y_full, &conj)?;
        let slots = ctx.params().slots();
        let half_i = ctx.encode_complex(
            &vec![Complex::new(0.0, -0.5); slots],
            ctx.rns().modulus_value((diff.level() - 1) as u32) as f64,
            diff.level(),
        );
        let y_im = ctx.try_rescale(&ctx.try_mul_plain(&diff, &half_i)?)?;
        Ok(BootState::Split {
            y_re,
            y_im,
            orig_scale,
        })
    }

    /// Stage 5 — recombine the EvalMod outputs and SlotToCoeff back.
    fn step_recombine(
        &self,
        ctx: &CkksContext,
        m_re: Ciphertext,
        m_im: Ciphertext,
        orig_scale: f64,
        keys: &BootstrapKeys,
    ) -> FheResult<BootState> {
        let _span = cl_trace::span("slot_to_coeff");
        let q0 = ctx.rns().modulus_value(0) as f64;
        let slots = ctx.params().slots();
        // Recombine: m = m_re + i·m_im.
        let lvl = m_re.level().min(m_im.level());
        let m_re = ctx.try_mod_drop(&m_re, lvl)?;
        let m_im = ctx.try_mod_drop(&m_im, lvl)?;
        let q_drop = ctx.rns().modulus_value((lvl - 1) as u32) as f64;
        let i_pt = ctx.encode_complex(
            &vec![Complex::new(0.0, 1.0); slots],
            m_re.scale() * q_drop / m_im.scale(),
            lvl,
        );
        let m_im_i = ctx.try_rescale(&ctx.try_mul_plain(&m_im, &i_pt)?)?;
        let m_re = ctx.try_mod_drop(&m_re, m_im_i.level())?;
        // Align scales exactly before adding.
        let combined = ctx.try_add(&m_re.clone().with_scale(m_im_i.scale()), &m_im_i)?;
        // Undo the /q0 normalization: the slots now hold (m·Δ)/q0 at the
        // recorded scale; restore by dividing the recorded scale by q0 and
        // multiplying by the input scale.
        let restored = combined
            .clone()
            .with_scale(combined.scale() * orig_scale / q0);
        // ---- SlotToCoeff.
        let out = self.try_linear_transform(ctx, &restored, TransformStage::SlotToCoeff, keys)?;
        // EvalMod removed the `q0·I` term the analytic estimate has been
        // carrying since ModRaise; the refreshed ciphertext's error is
        // dominated by the sine-approximation instead (a degree-d Taylor
        // expansion leaves a relative error around 2^-d on the unit-scaled
        // slots). Re-seed the tracked estimate so downstream budget
        // accounting reflects the refreshed state, not the pre-EvalMod
        // bound.
        let approx_bits = out.scale().log2() - self.taylor_degree as f64;
        let est = out.noise_estimate_bits().min(approx_bits);
        Ok(BootState::Done {
            ct: out.with_noise_bits(est),
        })
    }

    /// Bootstraps `ct` (level 1, fully consumed) back to a high level by
    /// running the [`BootState`] machine to completion.
    ///
    /// # Errors
    ///
    /// As for [`Bootstrapper::try_step`].
    pub fn try_bootstrap(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        keys: &BootstrapKeys,
    ) -> FheResult<Ciphertext> {
        let _span = cl_trace::span("bootstrap");
        let mut state = BootState::Start { ct: ct.clone() };
        for _ in 0..BootState::NUM_STAGES {
            state = self.try_step(ctx, state, keys)?;
        }
        match state {
            BootState::Done { ct } => Ok(ct),
            other => Err(FheError::InvalidParams {
                op: "bootstrap",
                reason: format!(
                    "state machine did not reach Done after {} stages (at {})",
                    BootState::NUM_STAGES,
                    other.stage_name()
                ),
            }),
        }
    }

    /// Panicking convenience wrapper around [`Bootstrapper::try_bootstrap`].
    ///
    /// # Panics
    ///
    /// Panics on any condition `try_bootstrap` reports as an error.
    #[must_use]
    pub fn bootstrap(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        keys: &BootstrapKeys,
    ) -> Ciphertext {
        self.try_bootstrap(ctx, ct, keys)
            .unwrap_or_else(|e| panic!("bootstrap: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_ckks::{CkksParams, KeySwitchKind};
    use rand::SeedableRng;

    fn boot_ctx() -> CkksContext {
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(20)
            .special_limbs(20)
            .limb_bits(45)
            .scale_bits(45)
            .build()
            .unwrap();
        CkksContext::new(params).unwrap()
    }

    #[test]
    fn matrix_diagonals_of_identity() {
        let d = matrix_diagonals(4, |v| v.to_vec());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, 0);
        for v in &d[0].1 {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn linear_transform_applies_fft_matrix() {
        // Applying CoeffToSlot to an encryption of z yields iFFT(z) in the
        // slots — checked against the plain FFT.
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        let vals: Vec<Complex> = (0..slots)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let pt = ctx.encode_complex(&vals, ctx.default_scale(), 5);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let out = booter
            .try_linear_transform(&ctx, &ct, TransformStage::CoeffToSlot, &keys)
            .expect("transform on well-formed inputs");
        let got = ctx.decode_complex(&ctx.decrypt(&out, &sk), slots);
        let fft = cl_math::SpecialFft::new(slots);
        let mut expect = vals.clone();
        fft.inverse(&mut expect);
        for (g, e) in got.iter().zip(&expect) {
            assert!((*g - *e).abs() < 1e-2, "{g:?} vs {e:?}");
        }
    }

    #[test]
    fn negative_rotation_step_resolves_to_its_canonical_key_and_slots() {
        // Regression (aliased rotation steps): a bundle generated for the
        // canonical step `slots - k` must serve a lookup spelled `-k`, and
        // the two spellings must rotate bit-identically — before step
        // canonicalization, `try_rot_key(-k)` was a MissingKey even though
        // the congruent key existed.
        let ctx = boot_ctx();
        let slots = ctx.params().slots() as i64;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let keys = BootstrapKeys::generate(
            &ctx,
            &sk,
            KeySwitchKind::Standard,
            &[slots - 3],
            &mut rng,
        );
        // Canonicalized key set: one key, at the canonical step.
        assert_eq!(keys.rotation_steps(), vec![slots - 3]);
        let k_neg = keys
            .try_rot_key(&ctx, -3)
            .expect("-3 must resolve to the congruent canonical key");
        let k_pos = keys.try_rot_key(&ctx, slots - 3).unwrap();
        assert!(Arc::ptr_eq(&k_neg, &k_pos), "one congruence class, one key");
        // And the rotations themselves are the same slot permutation.
        let pt = ctx.encode(&[1.0, 2.0, 3.0, 4.0], ctx.default_scale(), ctx.max_level());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let r_neg = ctx.try_rotate(&ct, -3, k_neg.as_ref()).unwrap();
        let r_pos = ctx.try_rotate(&ct, slots - 3, k_pos.as_ref()).unwrap();
        assert_eq!(r_neg, r_pos, "congruent steps must rotate bit-identically");
        // A generate() fed *both* spellings collapses them onto one key.
        let both = BootstrapKeys::generate(
            &ctx,
            &sk,
            KeySwitchKind::Standard,
            &[-3, slots - 3, slots + 5, 5],
            &mut rng,
        );
        assert_eq!(both.rotation_steps(), vec![5, slots - 3]);
    }

    #[test]
    fn keygen_fills_precompute_and_shrinks_key_set() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        assert!(booter.precompute().is_empty());
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        // Both transform levels are encoded eagerly at keygen.
        assert_eq!(booter.precompute().len(), 2);
        // BSGS needs ~2·sqrt(m) rotation keys; the dense special-FFT
        // matrices have m nonzero diagonals each, so the per-diagonal
        // scheme would need m-1.
        let m = ctx.params().slots();
        assert!(
            keys.rotations.len() < m - 1,
            "BSGS key set must be smaller than per-diagonal: {} vs {}",
            keys.rotations.len(),
            m - 1
        );
        for (_, pre) in booter.precompute.lock().iter() {
            for step in pre.required_steps() {
                assert!(keys.rotations.contains_key(&step), "missing key for step {step}");
            }
        }
    }

    #[test]
    fn eval_sin_matches_reference() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        // Real inputs within the bound.
        let vals: Vec<f64> = (0..slots)
            .map(|i| (i as f64 / slots as f64 - 0.5) * 2.0 * booter.k_bound * 0.9)
            .collect();
        let pt = ctx.encode(&vals, ctx.default_scale(), ctx.max_level());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let out = booter
            .try_eval_sin(&ctx, &ct, &keys)
            .expect("eval_sin on in-range inputs");
        let got = ctx.decode(&ctx.decrypt(&out, &sk), slots);
        for (g, &x) in got.iter().zip(&vals) {
            let expect = (2.0 * std::f64::consts::PI * x).sin() / (2.0 * std::f64::consts::PI);
            assert!(
                (g - expect).abs() < 1e-2,
                "sin mismatch at x={x}: {g} vs {expect}"
            );
        }
    }

    #[test]
    fn try_bootstrap_reports_missing_rotation_key() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let mut keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        // Drop one rotation key the CoeffToSlot transform needs (the
        // smallest step is a baby step the dense transform always uses).
        let dropped = *keys.rotations.keys().min().expect("bootstrap needs rotation keys");
        keys.rotations.remove(&dropped);
        let slots = ctx.params().slots();
        let pt = ctx.encode(&vec![0.25; slots], ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let err = booter
            .try_bootstrap(&ctx, &ct, &keys)
            .expect_err("bootstrap must fail without its rotation keys");
        match err {
            FheError::MissingKey { what } => {
                assert!(
                    what.contains(&format!("step {dropped}")),
                    "error must name the missing step: {what}"
                );
            }
            other => panic!("expected MissingKey, got {other:?}"),
        }
    }

    #[test]
    fn try_bootstrap_rejects_bad_policy_and_shallow_budget() {
        // A chain too short for the pipeline's depth.
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(6)
            .special_limbs(6)
            .limb_bits(45)
            .scale_bits(45)
            .build()
            .unwrap();
        let mut ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        let pt = ctx.encode(&vec![0.25; slots], ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);

        // AutoRescale is rejected up front: the pipeline's explicit
        // rescales would be doubled up by the policy.
        ctx.set_policy(cl_ckks::GuardrailPolicy::AutoRescale);
        match booter.try_bootstrap(&ctx, &ct, &keys) {
            Err(FheError::InvalidParams { op: "bootstrap", reason }) => {
                assert!(reason.contains("AutoRescale"), "{reason}");
            }
            other => panic!("expected InvalidParams for AutoRescale, got {other:?}"),
        }

        // Under the default policy the depth check fires.
        ctx.set_policy(cl_ckks::GuardrailPolicy::Permissive);
        match booter.try_bootstrap(&ctx, &ct, &keys) {
            Err(FheError::InvalidParams { op: "bootstrap", reason }) => {
                assert!(reason.contains("cannot cover"), "{reason}");
            }
            other => panic!("expected InvalidParams for shallow budget, got {other:?}"),
        }
    }

    #[test]
    fn stepwise_bootstrap_matches_monolithic_and_roundtrips_state() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| ((i * 5 % 11) as f64 / 11.0) - 0.5).collect();
        let pt = ctx.encode(&vals, ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let direct = booter.try_bootstrap(&ctx, &ct, &keys).unwrap();
        // Drive the machine manually, serializing the state at every stage
        // boundary — the exact path the checkpointing executor takes.
        let mut state = BootState::Start { ct: ct.clone() };
        let mut stages = Vec::new();
        while !state.is_done() {
            stages.push(state.stage_index());
            let blob = state.serialize(&ctx);
            let restored = BootState::try_deserialize(&ctx, &blob).unwrap();
            assert_eq!(restored.stage_index(), state.stage_index());
            for (a, b) in state.ciphertexts().iter().zip(restored.ciphertexts()) {
                assert_eq!(*a, b, "roundtrip must be bit-identical");
            }
            state = booter.try_step(&ctx, restored, &keys).unwrap();
        }
        assert_eq!(stages, vec![0, 1, 2, 3, 4]);
        match state {
            BootState::Done { ct: stepped } => {
                assert_eq!(stepped, direct, "stepwise result must be bit-identical");
            }
            other => panic!("expected Done, got {}", other.stage_name()),
        }
    }

    #[test]
    fn boot_state_rejects_corrupted_blob() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(18);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let pt = ctx.encode(&[0.5], ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let state = BootState::Start { ct };
        let blob = state.serialize(&ctx);
        // Framing byte.
        let mut bad = blob.clone();
        bad[0] ^= 1;
        assert!(BootState::try_deserialize(&ctx, &bad).is_err());
        // Payload byte deep in the ciphertext blob.
        let mut bad = blob.clone();
        let off = blob.len() - 20;
        bad[off] ^= 0x10;
        assert!(BootState::try_deserialize(&ctx, &bad).is_err());
    }

    #[test]
    fn bootstrap_keys_roundtrip_through_serialization() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let blob = keys.serialize(&ctx);
        let back = BootstrapKeys::try_deserialize(&ctx, &blob).unwrap();
        assert_eq!(back.rotation_steps(), keys.rotation_steps());
        // Compact load defers the end-to-end digest check to expansion.
        assert!(back.try_relin(&ctx).unwrap().verify_integrity());
        assert!(back.try_conj(&ctx).unwrap().verify_integrity());
        assert_eq!(
            back.relin_compact().integrity_digest(),
            keys.relin_compact().integrity_digest()
        );
        assert_eq!(
            back.conj_compact().integrity_digest(),
            keys.conj_compact().integrity_digest()
        );
        for step in keys.rotation_steps() {
            assert_eq!(
                back.rot_compact(step).unwrap().integrity_digest(),
                keys.rot_compact(step).unwrap().integrity_digest()
            );
        }
        // The loaded bundle actually bootstraps.
        let slots = ctx.params().slots();
        let pt = ctx.encode(&vec![0.25; slots], ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let a = booter.try_bootstrap(&ctx, &ct, &keys).unwrap();
        let b = booter.try_bootstrap(&ctx, &ct, &back).unwrap();
        assert_eq!(a, b);
        // Single-byte corruption anywhere in the bundle is rejected.
        let mut bad = blob.clone();
        bad[30] ^= 0x80; // framing region
        assert!(BootstrapKeys::try_deserialize(&ctx, &bad).is_err());
        let mut bad = blob.clone();
        let off = blob.len() / 2; // some nested key's payload
        bad[off] ^= 0x01;
        assert!(BootstrapKeys::try_deserialize(&ctx, &bad).is_err());
    }

    #[test]
    fn bootstrap_under_thrashing_hint_cache_is_bit_identical() {
        // A budget of 1 byte forces every hint to be evicted and
        // re-expanded mid-pipeline (one resident at a time); the result
        // must be bit-identical to a cache that never evicts.
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter
            .keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng)
            .with_cache(Arc::new(HintCache::new(usize::MAX)));
        let slots = ctx.params().slots();
        let pt = ctx.encode(&vec![0.125; slots], ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let roomy = booter.try_bootstrap(&ctx, &ct, &keys).unwrap();
        let tiny_cache = Arc::new(HintCache::new(1));
        let keys = keys.with_cache(tiny_cache.clone());
        let thrashed = booter.try_bootstrap(&ctx, &ct, &keys).unwrap();
        assert_eq!(thrashed, roomy, "eviction must never change results");
        let stats = tiny_cache.stats();
        assert!(
            stats.evictions > 0,
            "a 1-byte budget must actually thrash: {stats:?}"
        );
    }

    #[test]
    fn bootstrap_end_to_end_refreshes_budget() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| ((i * 7 % 13) as f64 / 13.0) - 0.5).collect();
        // An exhausted ciphertext at level 1.
        let pt = ctx.encode(&vals, ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        assert_eq!(ct.level(), 1);
        let refreshed = booter.bootstrap(&ctx, &ct, &keys);
        assert!(
            refreshed.level() > ct.level() + 2,
            "bootstrap must refresh the budget: got level {}",
            refreshed.level()
        );
        // The analytic noise estimate must survive the pipeline (finite and
        // accounted against the refreshed chain's budget).
        assert!(refreshed.noise_estimate_bits().is_finite());
        assert!(
            ctx.budget_bits(&refreshed) > 0.0,
            "refreshed ciphertext must report usable budget"
        );
        let got = ctx.decode(&ctx.decrypt(&refreshed, &sk), slots);
        for (g, e) in got.iter().zip(&vals) {
            assert!(
                (g - e).abs() < 0.05,
                "bootstrapped value mismatch: {g} vs {e}"
            );
        }
    }
}

