//! Functional CKKS bootstrapping.
//!
//! An executable implementation of the pipeline [`crate::BootstrapPlan`]
//! models, over the `cl-ckks` library at test-scale parameters:
//!
//! 1. **ModRaise** — lift the exhausted level-1 ciphertext to the full
//!    modulus chain. Decryption then yields `m + q0·I(X)` for an integer
//!    polynomial `I` bounded by the secret key's Hamming weight.
//! 2. **CoeffToSlot** — a homomorphic linear transform with the inverse
//!    special-FFT matrix, moving polynomial coefficients into slots (the
//!    encoder's coefficient layout makes this transform C-linear, so a
//!    single dense transform suffices at test scale).
//! 3. **EvalMod** — remove the `q0·I` term by evaluating
//!    `(q0/2π)·sin(2πx/q0)` on each slot: a low-degree Taylor expansion of
//!    `exp(2πi·x/(q0·2^r))` followed by `r` repeated squarings (the
//!    double-angle iteration of the state-of-the-art algorithm \[11\]),
//!    applied separately to the real and imaginary slot components.
//! 4. **SlotToCoeff** — the forward special-FFT transform back to
//!    coefficients.
//!
//! The result is a ciphertext of the *same message* at a much higher level
//! — a refreshed multiplicative budget (Fig. 2).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

use cl_ckks::{
    Ciphertext, CkksContext, FheError, FheResult, GuardrailPolicy, KeySwitchKey, Plaintext,
    SecretKey,
};
use cl_math::Complex;
use rand::Rng;

/// Key material for one bootstrapping configuration: rotation keys for the
/// BSGS baby/giant steps, a conjugation key, and a relinearization key.
#[derive(Debug)]
pub struct BootstrapKeys {
    relin: KeySwitchKey,
    conj: KeySwitchKey,
    rotations: HashMap<i64, KeySwitchKey>,
}

impl BootstrapKeys {
    /// Generates keyswitch keys for an explicit set of rotation steps (plus
    /// the relinearization and conjugation keys every bootstrap needs).
    /// Step 0 is skipped — the identity rotation needs no key.
    pub fn generate<R: Rng + ?Sized>(
        ctx: &CkksContext,
        sk: &SecretKey,
        kind: cl_ckks::KeySwitchKind,
        steps: &[i64],
        rng: &mut R,
    ) -> Self {
        let mut uniq: Vec<i64> = steps.iter().copied().filter(|&d| d != 0).collect();
        uniq.sort_unstable();
        uniq.dedup();
        let rotations = uniq
            .into_iter()
            .map(|d| (d, ctx.rotation_keygen(sk, d, kind, rng)))
            .collect();
        Self {
            relin: ctx.relin_keygen(sk, kind, rng),
            conj: ctx.conjugation_keygen(sk, kind, rng),
            rotations,
        }
    }

    /// The rotation key for `step`, in O(1).
    ///
    /// # Errors
    ///
    /// [`FheError::MissingKey`] naming the step when no key was generated
    /// for it.
    pub fn try_rot_key(&self, step: i64) -> FheResult<&KeySwitchKey> {
        self.rotations.get(&step).ok_or_else(|| FheError::MissingKey {
            what: format!("rotation key for step {step}"),
        })
    }

    /// The relinearization key.
    pub fn relin(&self) -> &KeySwitchKey {
        &self.relin
    }

    /// The conjugation key.
    pub fn conj(&self) -> &KeySwitchKey {
        &self.conj
    }
}

/// A functional bootstrapper: precomputed transform matrices plus the
/// EvalMod configuration.
pub struct Bootstrapper {
    /// Diagonals of the CoeffToSlot (inverse special FFT) matrix.
    cts_diags: Vec<(i64, Vec<Complex>)>,
    /// Diagonals of the SlotToCoeff (forward special FFT) matrix.
    sts_diags: Vec<(i64, Vec<Complex>)>,
    /// Double-angle iterations.
    r: u32,
    /// Taylor degree for `exp(2πi·y/2^r)`.
    taylor_degree: usize,
    /// Input range bound `|y| <= k` for EvalMod.
    k_bound: f64,
    /// Encoded transform plaintexts, cached per `(stage, level)`.
    precompute: BootstrapPrecompute,
}

impl std::fmt::Debug for Bootstrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bootstrapper")
            .field("r", &self.r)
            .field("taylor_degree", &self.taylor_degree)
            .field("k_bound", &self.k_bound)
            .finish()
    }
}

/// Which of the two bootstrap linear transforms a cached precompute
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformStage {
    /// The inverse special-FFT (coefficients into slots).
    CoeffToSlot,
    /// The forward special-FFT (slots back into coefficients).
    SlotToCoeff,
}

/// A linear transform arranged for baby-step/giant-step evaluation, with
/// every diagonal plaintext already encoded at a fixed level.
///
/// Writing each diagonal index `d = j·b + i` with `b =
/// ceil(sqrt(#diagonals))`, the dense sum `Σ_d diag_d ⊙ rot_d(v)`
/// regroups as
/// `Σ_j rot_{j·b}( Σ_i pt_{j,i} ⊙ rot_i(v) )` where
/// `pt_{j,i}[s] = diag_{j·b+i}[(s − j·b) mod m]` — only `b` baby
/// rotations of the input plus one giant rotation per group, instead of
/// one rotation per diagonal. The plaintexts are encoded once at
/// construction (scale = the modulus the closing rescale drops), so
/// applying the transform does no encoding at all.
pub struct PrecomputedTransform {
    level: usize,
    /// Distinct baby offsets `i` (may include 0 = the input itself).
    baby_steps: Vec<i64>,
    /// Giant groups: `(giant rotation j·b, [(baby offset i, plaintext)])`.
    giants: Vec<(i64, Vec<(i64, Plaintext)>)>,
}

impl std::fmt::Debug for PrecomputedTransform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrecomputedTransform")
            .field("level", &self.level)
            .field("baby_steps", &self.baby_steps)
            .field("giants", &self.giants.len())
            .finish()
    }
}

/// The BSGS baby-step count for a transform with `n_diags` nonzero
/// diagonals: `ceil(sqrt(n_diags))` (matching
/// `BootstrapPlan::bsgs_rotations`), independent of level so the
/// rotation-key set is stable across the modulus chain.
fn bsgs_baby(n_diags: usize) -> i64 {
    ((n_diags as f64).sqrt().ceil() as i64).max(1)
}

impl PrecomputedTransform {
    /// Encodes `diags` (generalized diagonals, indices in `[0, m)`) for
    /// BSGS evaluation on level-`level` ciphertexts.
    ///
    /// # Panics
    ///
    /// Panics if `level < 2` (the transform's closing rescale needs a
    /// modulus to drop) or a diagonal's length differs from the slot count.
    pub fn new(ctx: &CkksContext, diags: &[(i64, Vec<Complex>)], level: usize) -> Self {
        assert!(level >= 2, "BSGS transform needs a level to rescale into");
        let m = ctx.params().slots();
        let baby = bsgs_baby(diags.len());
        // Encoded at exactly the scale of the modulus the closing rescale
        // drops: the transform then preserves the ciphertext scale exactly
        // (any deviation would be amplified exponentially by EvalMod's
        // squaring chain).
        let scale = ctx.rns().modulus_value((level - 1) as u32) as f64;
        let mut baby_set = BTreeSet::new();
        let mut groups: BTreeMap<i64, Vec<(i64, Plaintext)>> = BTreeMap::new();
        for (d, diag) in diags {
            assert_eq!(diag.len(), m, "diagonal length must equal the slot count");
            let i = d % baby;
            let jb = d - i;
            baby_set.insert(i);
            // pt[s] = diag[(s − j·b) mod m]: the giant rotation moves the
            // plaintext weights back over the right slots.
            let shift = (jb as usize) % m;
            let rot: Vec<Complex> = (0..m).map(|s| diag[(s + m - shift) % m]).collect();
            groups
                .entry(jb)
                .or_default()
                .push((i, ctx.encode_complex(&rot, scale, level)));
        }
        Self {
            level,
            baby_steps: baby_set.into_iter().collect(),
            giants: groups.into_iter().collect(),
        }
    }

    /// The ciphertext level this precompute was encoded for.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Every nonzero rotation step the transform needs a key for (baby
    /// offsets plus giant steps), sorted.
    pub fn required_steps(&self) -> Vec<i64> {
        let mut steps: BTreeSet<i64> = self.baby_steps.iter().copied().collect();
        steps.extend(self.giants.iter().map(|(jb, _)| *jb));
        steps.remove(&0);
        steps.into_iter().collect()
    }
}

/// Cache of [`PrecomputedTransform`]s keyed by `(stage, level)`. Filled
/// eagerly at [`Bootstrapper::keygen`] for the two levels
/// [`Bootstrapper::try_bootstrap`] visits; misses (e.g. a transform applied
/// at a non-standard level) build and cache lazily.
#[derive(Default)]
pub struct BootstrapPrecompute {
    cache: Mutex<HashMap<(TransformStage, usize), Arc<PrecomputedTransform>>>,
}

impl std::fmt::Debug for BootstrapPrecompute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.cache.lock().map(|c| c.len()).unwrap_or(0);
        f.debug_struct("BootstrapPrecompute").field("entries", &n).finish()
    }
}

impl BootstrapPrecompute {
    /// Returns the cached precompute for `(stage, level)`, building and
    /// inserting it from `diags` on a miss.
    pub fn get_or_build(
        &self,
        ctx: &CkksContext,
        stage: TransformStage,
        level: usize,
        diags: &[(i64, Vec<Complex>)],
    ) -> Arc<PrecomputedTransform> {
        let key = (stage, level);
        if let Some(hit) = self.lock().get(&key) {
            return hit.clone();
        }
        // Encode outside the lock; a racing builder just wastes one encode.
        let built = Arc::new(PrecomputedTransform::new(ctx, diags, level));
        self.lock().entry(key).or_insert(built).clone()
    }

    /// Number of cached `(stage, level)` entries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<(TransformStage, usize), Arc<PrecomputedTransform>>> {
        self.cache
            .lock()
            .expect("precompute cache poisoned: a panic while encoding plaintexts")
    }
}

/// Applies a precomputed BSGS linear transform to `ct` and rescales.
/// Consumes one level.
///
/// All baby rotations share one hoisted decomposition of the input
/// ([`CkksContext::try_rotate_hoisted_many`]), and the giant-step outputs
/// are accumulated in the extended basis with a single closing ModDown
/// ([`CkksContext::try_rotate_sum`]) — the double-hoisted evaluation
/// CraterLake's bootstrap schedule amortizes its keyswitch traffic with
/// (Sec. 6).
///
/// # Errors
///
/// [`FheError::LevelMismatch`] when `ct.level() != pre.level()`;
/// [`FheError::MissingKey`] when `keys` lacks a needed baby/giant step;
/// [`FheError::InvalidParams`] on a transform with no diagonals; plus any
/// guardrail failure from the underlying ops.
pub fn try_bsgs_transform(
    ctx: &CkksContext,
    ct: &Ciphertext,
    pre: &PrecomputedTransform,
    keys: &BootstrapKeys,
) -> FheResult<Ciphertext> {
    const OP: &str = "linear_transform";
    if ct.level() != pre.level {
        return Err(FheError::LevelMismatch {
            op: OP,
            got: ct.level(),
            want: pre.level,
        });
    }
    if pre.giants.is_empty() {
        return Err(FheError::InvalidParams {
            op: OP,
            reason: "transform has no nonzero diagonals".into(),
        });
    }
    // Baby rotations: one hoisted ModUp serves every step.
    let nonzero: Vec<i64> = pre.baby_steps.iter().copied().filter(|&i| i != 0).collect();
    let baby_keys: Vec<&KeySwitchKey> = nonzero
        .iter()
        .map(|&i| keys.try_rot_key(i))
        .collect::<FheResult<_>>()?;
    let rotated = ctx.try_rotate_hoisted_many(ct, &nonzero, &baby_keys)?;
    let mut babies: HashMap<i64, &Ciphertext> =
        nonzero.iter().copied().zip(rotated.iter()).collect();
    babies.insert(0, ct);
    // Inner sums: plaintext-multiply each baby into its giant group.
    let mut inners: Vec<(Ciphertext, i64)> = Vec::with_capacity(pre.giants.len());
    for (jb, terms) in &pre.giants {
        let mut acc: Option<Ciphertext> = None;
        for (i, pt) in terms {
            let baby = babies
                .get(i)
                .expect("baby offsets and giant groups come from the same diagonal split");
            let term = ctx.try_mul_plain(baby, pt)?;
            acc = Some(match acc {
                None => term,
                Some(a) => ctx.try_add(&a, &term)?,
            });
        }
        let inner = acc.expect("giant groups are non-empty by construction");
        inners.push((inner, *jb));
    }
    // Giant rotations: extended-basis accumulation, one closing ModDown.
    let giant_terms: Vec<(&Ciphertext, i64, Option<&KeySwitchKey>)> = inners
        .iter()
        .map(|(inner, jb)| {
            let key = if *jb == 0 { None } else { Some(keys.try_rot_key(*jb)?) };
            Ok((inner, *jb, key))
        })
        .collect::<FheResult<_>>()?;
    let summed = ctx.try_rotate_sum(&giant_terms)?;
    ctx.try_rescale(&summed)
}

/// Extracts the generalized diagonals of an `m x m` complex matrix given as
/// a linear map (closure on basis vectors). Diagonal `d` holds
/// `M[j][(j+d) mod m]`.
fn matrix_diagonals<F>(m: usize, apply: F) -> Vec<(i64, Vec<Complex>)>
where
    F: Fn(&[Complex]) -> Vec<Complex>,
{
    // Columns of the matrix: apply to unit vectors.
    let mut cols = Vec::with_capacity(m);
    for k in 0..m {
        let mut e = vec![Complex::default(); m];
        e[k] = Complex::new(1.0, 0.0);
        cols.push(apply(&e));
    }
    let mut diags = Vec::new();
    for d in 0..m {
        let mut diag = vec![Complex::default(); m];
        let mut nonzero = false;
        for j in 0..m {
            let v = cols[(j + d) % m][j];
            if v.abs() > 1e-12 {
                nonzero = true;
            }
            diag[j] = v;
        }
        if nonzero {
            diags.push((d as i64, diag));
        }
    }
    diags
}

impl Bootstrapper {
    /// Builds a bootstrapper for the given context. `h` is the secret key's
    /// Hamming weight (bounds the EvalMod range).
    pub fn new(ctx: &CkksContext, h: usize) -> Self {
        let slots = ctx.params().slots();
        let fft = cl_math::SpecialFft::new(slots);
        // CoeffToSlot: slots(u) = iFFT(z) — C-linear in z.
        let cts_diags = matrix_diagonals(slots, |z| {
            let mut v = z.to_vec();
            fft.inverse(&mut v);
            v
        });
        // SlotToCoeff: z = FFT(u).
        let sts_diags = matrix_diagonals(slots, |u| {
            let mut v = u.to_vec();
            fft.forward(&mut v);
            v
        });
        // |I| <= (h+1)/2 plus the message's q0 fraction.
        let k_bound = (h as f64 + 1.0) / 2.0 + 1.0;
        // Choose r so the Taylor argument 2π·k/2^r stays below ~0.8.
        let mut r = 0u32;
        while 2.0 * std::f64::consts::PI * k_bound / 2f64.powi(r as i32) > 0.8 {
            r += 1;
        }
        Self {
            cts_diags,
            sts_diags,
            r,
            taylor_degree: 7,
            k_bound,
            precompute: BootstrapPrecompute::default(),
        }
    }

    /// Multiplicative depth the pipeline consumes: CoeffToSlot (1) +
    /// real/imaginary split (1) + Taylor powers (3) + `r` squarings +
    /// final constant (1) + SlotToCoeff (1).
    pub fn depth(&self) -> usize {
        7 + self.r as usize
    }

    /// Generates the keyswitch keys bootstrapping needs — only the BSGS
    /// baby/giant steps of the two transforms, not one key per diagonal —
    /// and eagerly fills the [`BootstrapPrecompute`] cache for the two
    /// levels [`Bootstrapper::try_bootstrap`] visits, so no transform
    /// plaintext is encoded on the bootstrap hot path.
    pub fn keygen<R: Rng + ?Sized>(
        &self,
        ctx: &CkksContext,
        sk: &SecretKey,
        kind: cl_ckks::KeySwitchKind,
        rng: &mut R,
    ) -> BootstrapKeys {
        let mut steps = BTreeSet::new();
        for diags in [&self.cts_diags, &self.sts_diags] {
            let baby = bsgs_baby(diags.len());
            for (d, _) in diags {
                let i = d % baby;
                steps.insert(i);
                steps.insert(d - i);
            }
        }
        steps.remove(&0);
        let l_max = ctx.max_level();
        if l_max > self.depth() + 1 {
            // CoeffToSlot runs on the raised ciphertext at `l_max`;
            // SlotToCoeff after the full EvalMod depth.
            self.precomputed(ctx, TransformStage::CoeffToSlot, l_max);
            self.precomputed(ctx, TransformStage::SlotToCoeff, l_max - self.depth() - 1);
        }
        let steps: Vec<i64> = steps.into_iter().collect();
        BootstrapKeys::generate(ctx, sk, kind, &steps, rng)
    }

    /// Read access to the `(stage, level)` plaintext cache.
    pub fn precompute(&self) -> &BootstrapPrecompute {
        &self.precompute
    }

    fn precomputed(
        &self,
        ctx: &CkksContext,
        stage: TransformStage,
        level: usize,
    ) -> Arc<PrecomputedTransform> {
        let diags = match stage {
            TransformStage::CoeffToSlot => &self.cts_diags,
            TransformStage::SlotToCoeff => &self.sts_diags,
        };
        self.precompute.get_or_build(ctx, stage, level, diags)
    }

    /// Homomorphic dense linear transform: `Σ_d diag_d ⊙ rot_d(ct)`,
    /// evaluated in BSGS form over cached precomputed plaintexts.
    /// Consumes one level.
    fn try_linear_transform(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        stage: TransformStage,
        keys: &BootstrapKeys,
    ) -> FheResult<Ciphertext> {
        let pre = self.precomputed(ctx, stage, ct.level());
        try_bsgs_transform(ctx, ct, &pre, keys)
    }

    /// EvalMod on the *real part* interpretation: input `ct` decodes to
    /// real slot values `y` with `|y| <= k_bound`; output decodes to
    /// `(1/2π)·sin(2π y)` at the same scale.
    fn try_eval_sin(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        keys: &BootstrapKeys,
    ) -> FheResult<Ciphertext> {
        let two_pi = 2.0 * std::f64::consts::PI;
        let theta = two_pi / 2f64.powi(self.r as i32);
        // Taylor coefficients of exp(i·theta·y) in y.
        let mut coeffs = Vec::with_capacity(self.taylor_degree + 1);
        let mut term = Complex::new(1.0, 0.0);
        coeffs.push(term);
        for k in 1..=self.taylor_degree {
            term = term * Complex::new(0.0, theta) / k as f64;
            coeffs.push(term);
        }
        // Powers y^1..y^7 with depth 3: y2=y*y, y3=y*y2, y4=y2*y2,
        // y5=y2*y3, y6=y3*y3, y7=y3*y4.
        let y1 = ct.clone();
        let y2 = ctx.try_rescale(&ctx.try_mul(&y1, &y1, &keys.relin)?)?;
        let y3 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y1, y2.level())?, &y2, &keys.relin)?)?;
        let y4 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y2, y2.level())?, &y2, &keys.relin)?)?;
        let y5 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y2, y3.level())?, &y3, &keys.relin)?)?;
        let y6 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y3, y3.level())?, &y3, &keys.relin)?)?;
        let y7 =
            ctx.try_rescale(&ctx.try_mul(&ctx.try_mod_drop(&y3, y4.level())?, &y4, &keys.relin)?)?;
        // Align all powers at the deepest level/scale and combine:
        // E0 = sum_k coeffs[k] * y^k.
        let target_level = y7.level();
        let powers = [y1, y2, y3, y4, y5, y6, y7];
        let mut acc: Option<Ciphertext> = None;
        for (k, p) in powers.iter().enumerate() {
            let p = ctx.try_mod_drop(p, target_level)?;
            // Encode each Taylor coefficient at the scale that makes the
            // product land, after the closing rescale, exactly on the
            // default scale — the squaring chain then cannot drift.
            let q_drop = ctx.rns().modulus_value((target_level - 1) as u32) as f64;
            let desired = ctx.default_scale() * q_drop;
            let coeff_scale = desired / p.scale();
            let slots = ctx.params().slots();
            let cvec = vec![coeffs[k + 1]; slots];
            let pt = ctx.encode_complex(&cvec, coeff_scale, target_level);
            let term = ctx.try_mul_plain(&p, &pt)?;
            acc = Some(match acc {
                None => term,
                Some(a) => ctx.try_add(&a, &term)?,
            });
        }
        let acc = acc.expect("Taylor sum over a non-empty power basis");
        let mut e = ctx.try_rescale(&acc)?;
        // + coeffs[0] (the constant 1).
        let ones = vec![coeffs[0]; ctx.params().slots()];
        let pt1 = ctx.encode_complex(&ones, e.scale(), e.level());
        e = ctx.try_add_plain(&e, &pt1)?;
        // Double-angle: square r times => exp(2πi·y).
        for _ in 0..self.r {
            e = ctx.try_rescale(&ctx.try_square(&e, &keys.relin)?)?;
        }
        // sin(2πy)/(2π) = Re(E * (-i/2π)) * 2 = w + conj(w),
        // w = E * (-i/(4π))... : sin = (E - conj E)/(2i);
        // k*sin = w + conj(w) with w = k·E/(2i) for real k = 1/(2π).
        let k_const = 1.0 / two_pi;
        let w_coeff = Complex::new(0.0, -k_const / 2.0); // k/(2i)
        let slots = ctx.params().slots();
        let q_drop = ctx.rns().modulus_value((e.level() - 1) as u32) as f64;
        let pt = ctx.encode_complex(
            &vec![w_coeff; slots],
            ctx.default_scale() * q_drop / e.scale(),
            e.level(),
        );
        let w = ctx.try_rescale(&ctx.try_mul_plain(&e, &pt)?)?;
        let wc = ctx.try_conjugate(&w, &keys.conj)?;
        ctx.try_add(&w, &wc)
    }

    /// Bootstraps `ct` (level 1, fully consumed) back to a high level.
    ///
    /// # Errors
    ///
    /// - [`FheError::InvalidParams`] if the context's budget cannot cover
    ///   the pipeline's depth (see [`Bootstrapper::depth`]), or if the
    ///   context runs the `AutoRescale` guardrail policy (the pipeline
    ///   manages scales explicitly; an auto-inserted rescale would corrupt
    ///   the EvalMod squaring chain).
    /// - [`FheError::MissingKey`] if a rotation key for a transform
    ///   diagonal is absent from `keys`.
    /// - Any error the underlying homomorphic ops report under the
    ///   context's guardrail policy.
    pub fn try_bootstrap(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        keys: &BootstrapKeys,
    ) -> FheResult<Ciphertext> {
        if matches!(ctx.policy(), GuardrailPolicy::AutoRescale) {
            return Err(FheError::InvalidParams {
                op: "bootstrap",
                reason: "bootstrap manages rescaling explicitly; the AutoRescale \
                         policy would insert extra rescales and corrupt the scale \
                         bookkeeping"
                    .into(),
            });
        }
        let l_max = ctx.max_level();
        if l_max <= self.depth() + 1 {
            return Err(FheError::InvalidParams {
                op: "bootstrap",
                reason: format!(
                    "budget {l_max} cannot cover bootstrap depth {}",
                    self.depth()
                ),
            });
        }
        let rns = ctx.rns();
        let q0 = rns.modulus_value(0) as f64;
        // ---- ModRaise: lift residues mod q0 to the full chain.
        let raise = |poly: &cl_rns::RnsPoly| {
            let mut p = poly.clone();
            rns.from_ntt(&mut p);
            let m0 = rns.modulus(0);
            let signed: Vec<i64> = p.limb(0).iter().map(|&x| m0.lift_centered(x)).collect();
            let mut out = rns.from_signed_coeffs(&signed, &rns.q_basis(l_max));
            rns.to_ntt(&mut out);
            out
        };
        // The raised ciphertext decrypts to `m·Δ + q0·I` with `|I|` bounded
        // by the EvalMod range: its dominant "noise" term is the `q0·I`
        // component EvalMod will remove, so seed the tracked estimate with
        // that magnitude rather than the fresh-encryption default.
        let raised = ctx
            .ciphertext_from_parts(raise(ct.c0()), raise(ct.c1()), l_max, ct.scale())
            .with_noise_bits(
                ct.noise_estimate_bits()
                    .max(q0.log2() + self.k_bound.log2()),
            );
        // ---- CoeffToSlot: slots become u_j = c_j + i·c_{j+slots}, where c
        // are the raised polynomial's coefficients (value m·Δ + q0·I).
        // The factor n/2 from the unnormalized embedding is absorbed by
        // the transform matrix itself (it is exactly the encoder's iFFT).
        let u = self.try_linear_transform(ctx, &raised, TransformStage::CoeffToSlot, keys)?;
        // Reinterpret: record the scale as q0·(old/old)… the true slot
        // values are (m·Δ + q0·I); dividing the recorded scale by
        // (Δ_in/ q0)·(old_scale/Δ_in)... concretely: decoded = true/scale.
        // We want decoded y = true/q0, so set scale := q0 * (u.scale/u.scale) = q0,
        // adjusted by the ratio the transform introduced.
        let y_full = u.clone().with_scale(u.scale() * q0 / ct.scale());
        // ---- Split real/imaginary parts.
        let conj = ctx.try_conjugate(&y_full, &keys.conj)?;
        // y_re = (u + conj)/2: the division by 2 is a free scale bump.
        let sum = ctx.try_add(&y_full, &conj)?;
        let y_re = sum.clone().with_scale(sum.scale() * 2.0);
        // y_im = (u - conj)/(2i): plaintext multiply by -i/2.
        let diff = ctx.try_sub(&y_full, &conj)?;
        let slots = ctx.params().slots();
        let half_i = ctx.encode_complex(
            &vec![Complex::new(0.0, -0.5); slots],
            ctx.rns().modulus_value((diff.level() - 1) as u32) as f64,
            diff.level(),
        );
        let y_im = ctx.try_rescale(&ctx.try_mul_plain(&diff, &half_i)?)?;
        // ---- EvalMod both components: result decodes to (mΔ)_component/q0.
        let m_re = self.try_eval_sin(ctx, &y_re, keys)?;
        let y_im_aligned = ctx.try_mod_drop(&y_im, m_re.level() + self.r as usize + 4)?;
        let m_im = self.try_eval_sin(ctx, &y_im_aligned, keys)?;
        // Recombine: m = m_re + i·m_im.
        let lvl = m_re.level().min(m_im.level());
        let m_re = ctx.try_mod_drop(&m_re, lvl)?;
        let m_im = ctx.try_mod_drop(&m_im, lvl)?;
        let q_drop = ctx.rns().modulus_value((lvl - 1) as u32) as f64;
        let i_pt = ctx.encode_complex(
            &vec![Complex::new(0.0, 1.0); slots],
            m_re.scale() * q_drop / m_im.scale(),
            lvl,
        );
        let m_im_i = ctx.try_rescale(&ctx.try_mul_plain(&m_im, &i_pt)?)?;
        let m_re = ctx.try_mod_drop(&m_re, m_im_i.level())?;
        // Align scales exactly before adding.
        let combined = ctx.try_add(&m_re.clone().with_scale(m_im_i.scale()), &m_im_i)?;
        // Undo the /q0 normalization: the slots now hold (m·Δ)/q0 at the
        // recorded scale; restore by dividing the recorded scale by q0 and
        // multiplying by the input scale.
        let restored = combined.clone().with_scale(combined.scale() * ct.scale() / q0);
        // ---- SlotToCoeff.
        let out = self.try_linear_transform(ctx, &restored, TransformStage::SlotToCoeff, keys)?;
        // EvalMod removed the `q0·I` term the analytic estimate has been
        // carrying since ModRaise; the refreshed ciphertext's error is
        // dominated by the sine-approximation instead (a degree-d Taylor
        // expansion leaves a relative error around 2^-d on the unit-scaled
        // slots). Re-seed the tracked estimate so downstream budget
        // accounting reflects the refreshed state, not the pre-EvalMod
        // bound.
        let approx_bits = out.scale().log2() - self.taylor_degree as f64;
        let est = out.noise_estimate_bits().min(approx_bits);
        Ok(out.with_noise_bits(est))
    }

    /// Panicking convenience wrapper around [`Bootstrapper::try_bootstrap`].
    ///
    /// # Panics
    ///
    /// Panics on any condition `try_bootstrap` reports as an error.
    #[must_use]
    pub fn bootstrap(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        keys: &BootstrapKeys,
    ) -> Ciphertext {
        self.try_bootstrap(ctx, ct, keys)
            .unwrap_or_else(|e| panic!("bootstrap: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_ckks::{CkksParams, KeySwitchKind};
    use rand::SeedableRng;

    fn boot_ctx() -> CkksContext {
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(20)
            .special_limbs(20)
            .limb_bits(45)
            .scale_bits(45)
            .build()
            .unwrap();
        CkksContext::new(params).unwrap()
    }

    #[test]
    fn matrix_diagonals_of_identity() {
        let d = matrix_diagonals(4, |v| v.to_vec());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, 0);
        for v in &d[0].1 {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn linear_transform_applies_fft_matrix() {
        // Applying CoeffToSlot to an encryption of z yields iFFT(z) in the
        // slots — checked against the plain FFT.
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        let vals: Vec<Complex> = (0..slots)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let pt = ctx.encode_complex(&vals, ctx.default_scale(), 5);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let out = booter
            .try_linear_transform(&ctx, &ct, TransformStage::CoeffToSlot, &keys)
            .expect("transform on well-formed inputs");
        let got = ctx.decode_complex(&ctx.decrypt(&out, &sk), slots);
        let fft = cl_math::SpecialFft::new(slots);
        let mut expect = vals.clone();
        fft.inverse(&mut expect);
        for (g, e) in got.iter().zip(&expect) {
            assert!((*g - *e).abs() < 1e-2, "{g:?} vs {e:?}");
        }
    }

    #[test]
    fn keygen_fills_precompute_and_shrinks_key_set() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        assert!(booter.precompute().is_empty());
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        // Both transform levels are encoded eagerly at keygen.
        assert_eq!(booter.precompute().len(), 2);
        // BSGS needs ~2·sqrt(m) rotation keys; the dense special-FFT
        // matrices have m nonzero diagonals each, so the per-diagonal
        // scheme would need m-1.
        let m = ctx.params().slots();
        assert!(
            keys.rotations.len() < m - 1,
            "BSGS key set must be smaller than per-diagonal: {} vs {}",
            keys.rotations.len(),
            m - 1
        );
        for (_, pre) in booter.precompute.lock().iter() {
            for step in pre.required_steps() {
                assert!(keys.rotations.contains_key(&step), "missing key for step {step}");
            }
        }
    }

    #[test]
    fn eval_sin_matches_reference() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        // Real inputs within the bound.
        let vals: Vec<f64> = (0..slots)
            .map(|i| (i as f64 / slots as f64 - 0.5) * 2.0 * booter.k_bound * 0.9)
            .collect();
        let pt = ctx.encode(&vals, ctx.default_scale(), ctx.max_level());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let out = booter
            .try_eval_sin(&ctx, &ct, &keys)
            .expect("eval_sin on in-range inputs");
        let got = ctx.decode(&ctx.decrypt(&out, &sk), slots);
        for (g, &x) in got.iter().zip(&vals) {
            let expect = (2.0 * std::f64::consts::PI * x).sin() / (2.0 * std::f64::consts::PI);
            assert!(
                (g - expect).abs() < 1e-2,
                "sin mismatch at x={x}: {g} vs {expect}"
            );
        }
    }

    #[test]
    fn try_bootstrap_reports_missing_rotation_key() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let mut keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        // Drop one rotation key the CoeffToSlot transform needs (the
        // smallest step is a baby step the dense transform always uses).
        let dropped = *keys.rotations.keys().min().expect("bootstrap needs rotation keys");
        keys.rotations.remove(&dropped);
        let slots = ctx.params().slots();
        let pt = ctx.encode(&vec![0.25; slots], ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let err = booter
            .try_bootstrap(&ctx, &ct, &keys)
            .expect_err("bootstrap must fail without its rotation keys");
        match err {
            FheError::MissingKey { what } => {
                assert!(
                    what.contains(&format!("step {dropped}")),
                    "error must name the missing step: {what}"
                );
            }
            other => panic!("expected MissingKey, got {other:?}"),
        }
    }

    #[test]
    fn try_bootstrap_rejects_bad_policy_and_shallow_budget() {
        // A chain too short for the pipeline's depth.
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(6)
            .special_limbs(6)
            .limb_bits(45)
            .scale_bits(45)
            .build()
            .unwrap();
        let mut ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        let pt = ctx.encode(&vec![0.25; slots], ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);

        // AutoRescale is rejected up front: the pipeline's explicit
        // rescales would be doubled up by the policy.
        ctx.set_policy(cl_ckks::GuardrailPolicy::AutoRescale);
        match booter.try_bootstrap(&ctx, &ct, &keys) {
            Err(FheError::InvalidParams { op: "bootstrap", reason }) => {
                assert!(reason.contains("AutoRescale"), "{reason}");
            }
            other => panic!("expected InvalidParams for AutoRescale, got {other:?}"),
        }

        // Under the default policy the depth check fires.
        ctx.set_policy(cl_ckks::GuardrailPolicy::Permissive);
        match booter.try_bootstrap(&ctx, &ct, &keys) {
            Err(FheError::InvalidParams { op: "bootstrap", reason }) => {
                assert!(reason.contains("cannot cover"), "{reason}");
            }
            other => panic!("expected InvalidParams for shallow budget, got {other:?}"),
        }
    }

    #[test]
    fn bootstrap_end_to_end_refreshes_budget() {
        let ctx = boot_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| ((i * 7 % 13) as f64 / 13.0) - 0.5).collect();
        // An exhausted ciphertext at level 1.
        let pt = ctx.encode(&vals, ctx.default_scale(), 1);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        assert_eq!(ct.level(), 1);
        let refreshed = booter.bootstrap(&ctx, &ct, &keys);
        assert!(
            refreshed.level() > ct.level() + 2,
            "bootstrap must refresh the budget: got level {}",
            refreshed.level()
        );
        // The analytic noise estimate must survive the pipeline (finite and
        // accounted against the refreshed chain's budget).
        assert!(refreshed.noise_estimate_bits().is_finite());
        assert!(
            ctx.budget_bits(&refreshed) > 0.0,
            "refreshed ciphertext must report usable budget"
        );
        let got = ctx.decode(&ctx.decrypt(&refreshed, &sk), slots);
        for (g, e) in got.iter().zip(&vals) {
            assert!(
                (g - e).abs() < 0.05,
                "bootstrapped value mismatch: {g} vs {e}"
            );
        }
    }
}

