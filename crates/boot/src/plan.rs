//! The analytic bootstrapping plan.
//!
//! Packed CKKS bootstrapping [11, 14, 53] has four stages:
//!
//! 1. **ModRaise** — reinterpret the exhausted (low-level) ciphertext over
//!    the full modulus chain; the message becomes `m + q0·I(X)` for a small
//!    integer polynomial `I`.
//! 2. **CoeffToSlot** — a homomorphic DFT moving coefficients into slots,
//!    decomposed into radix stages (each a BSGS-evaluated sparse linear
//!    transform) so each partition's plaintext matrices fit on chip
//!    (Sec. 6: the decomposition "consumes some extra levels, but achieves
//!    much higher performance overall by allowing on-chip reuse").
//! 3. **EvalMod** — evaluate `x mod q0` via a scaled-sine Chebyshev
//!    polynomial (Paterson-Stockmeyer) plus double-angle iterations.
//! 4. **SlotToCoeff** — the inverse homomorphic DFT.
//!
//! The plan captures each stage's rotations, multiplications, and level
//! consumption, and can expand itself into an [`HeGraph`] fragment whose
//! rotation amounts reflect the real BSGS access pattern — so the machine
//! model sees the true keyswitch-hint reuse.

use cl_isa::{HeGraph, NodeId, Phase};

/// A plan for one bootstrapping operation at full-scale parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapPlan {
    /// Ring degree.
    pub n: usize,
    /// Slots being refreshed (`n/2` for fully packed, 1 for unpacked).
    pub slots: usize,
    /// Level the ciphertext is raised to (the full budget).
    pub l_max: usize,
    /// Radix stages in CoeffToSlot (each consumes `cts_level_cost` levels).
    pub cts_stages: usize,
    /// Radix stages in SlotToCoeff.
    pub sts_stages: usize,
    /// Levels consumed per CoeffToSlot/SlotToCoeff stage (>1 models the
    /// higher-precision matrix encodings of non-sparse bootstrapping).
    pub cts_level_cost: usize,
    /// Plaintext diagonals per radix stage (matrix sparsity).
    pub diags_per_stage: usize,
    /// Ciphertext-ciphertext multiplications in EvalMod
    /// (Paterson-Stockmeyer powers + combination + double-angle).
    pub evalmod_ct_muls: usize,
    /// Plaintext multiplications in EvalMod (coefficient scaling).
    pub evalmod_pt_muls: usize,
    /// Levels EvalMod consumes.
    pub evalmod_levels: usize,
}

impl BootstrapPlan {
    /// The fully packed plan (all `n/2` slots) used by the deep benchmarks,
    /// calibrated to the paper's operating point: on an `L = 57` budget the
    /// pipeline consumes 35 levels, leaving 22 for application computation
    /// (Sec. 2.3's LSTM example).
    ///
    /// # Panics
    ///
    /// Panics if `l_max` is too small to bootstrap at all.
    pub fn packed(n: usize, l_max: usize) -> Self {
        let plan = Self {
            n,
            slots: n / 2,
            l_max,
            cts_stages: 3,
            sts_stages: 3,
            cts_level_cost: 2,
            // Radix ~ (n/2)^(1/3); the merged DFT factor at that radix has
            // ~diagonal count ~ 20 after the on-chip tiling of Sec. 6.
            diags_per_stage: 20,
            evalmod_ct_muls: 14,
            evalmod_pt_muls: 16,
            evalmod_levels: 23,
        };
        assert!(
            plan.levels_consumed() < l_max,
            "budget {l_max} too small: bootstrapping consumes {}",
            plan.levels_consumed()
        );
        plan
    }

    /// A sparsely packed plan: the ciphertext uses only `slots` of the
    /// `n/2` available slots, which shrinks the CoeffToSlot/SlotToCoeff
    /// matrices dramatically ("bootstrapping costs grow with the number of
    /// slots", Sec. 8). Used by benchmarks whose working vectors are small,
    /// like the 128-wide LSTM.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a power of two or the budget is too small.
    pub fn sparse(n: usize, l_max: usize, slots: usize) -> Self {
        assert!(slots.is_power_of_two() && slots >= 2);
        let plan = Self {
            n,
            slots,
            l_max,
            cts_stages: 2,
            sts_stages: 2,
            cts_level_cost: 2,
            diags_per_stage: 2 * (slots as f64).powf(0.5).ceil() as usize / 2,
            evalmod_ct_muls: 14,
            evalmod_pt_muls: 16,
            // Same total level consumption as the packed pipeline (the
            // EvalMod precision requirement does not shrink with slots).
            evalmod_levels: 27,
        };
        assert!(
            plan.levels_consumed() < l_max,
            "budget {l_max} too small: bootstrapping consumes {}",
            plan.levels_consumed()
        );
        plan
    }

    /// The unpacked plan (a single slot, `L <= 23`): CoeffToSlot and
    /// SlotToCoeff collapse to a handful of rotations, making it far
    /// shallower and cheaper — but >1,000x worse per slot (Sec. 8).
    ///
    /// # Panics
    ///
    /// Panics if `l_max` is too small to bootstrap at all.
    pub fn unpacked(n: usize, l_max: usize) -> Self {
        let plan = Self {
            n,
            slots: 1,
            l_max,
            cts_stages: 1,
            sts_stages: 1,
            cts_level_cost: 1,
            diags_per_stage: 2,
            evalmod_ct_muls: 10,
            evalmod_pt_muls: 8,
            evalmod_levels: 14,
        };
        assert!(
            plan.levels_consumed() < l_max,
            "budget {l_max} too small: bootstrapping consumes {}",
            plan.levels_consumed()
        );
        plan
    }

    /// Total levels one bootstrap consumes.
    pub fn levels_consumed(&self) -> usize {
        (self.cts_stages + self.sts_stages) * self.cts_level_cost + self.evalmod_levels
    }

    /// Level of the refreshed output ciphertext (the usable budget).
    pub fn output_level(&self) -> usize {
        self.l_max - self.levels_consumed()
    }

    /// Rotations one BSGS linear transform with `d` diagonals needs:
    /// `sqrt(d)` baby steps (capped so the live baby set fits on chip, the
    /// Sec. 6 tiling) plus the matching giant steps.
    fn bsgs_rotations(&self, d: usize, level: usize) -> (usize, usize) {
        let ct_bytes = 2 * level * self.n * 28 / 8;
        let cap = ((96usize << 20) / ct_bytes).max(2);
        let baby = ((d as f64).sqrt().ceil() as usize).clamp(1, cap);
        let giant = d.div_ceil(baby);
        (baby, giant)
    }

    /// Total homomorphic operation counts for one bootstrap:
    /// `(rotations, ct_muls, pt_muls)`.
    pub fn op_counts(&self) -> (usize, usize, usize) {
        let (baby, giant) = self.bsgs_rotations(self.diags_per_stage, self.l_max - 4);
        let rot_per_stage = baby + giant - 1;
        let stages = self.cts_stages + self.sts_stages;
        let rotations = stages * rot_per_stage + 2; // +2 conjugations
        let ct_muls = self.evalmod_ct_muls;
        let pt_muls = stages * self.diags_per_stage + self.evalmod_pt_muls;
        (rotations, ct_muls, pt_muls)
    }

    /// Appends the bootstrap of `input` to `g`, returning the refreshed
    /// node. All appended nodes are tagged [`Phase::Bootstrap`]. Rotation
    /// amounts follow the real radix-BSGS access pattern so keyswitch-hint
    /// reuse is faithful.
    ///
    /// # Panics
    ///
    /// Panics if `input`'s level plus the raise target is inconsistent
    /// (input level must be below `l_max`).
    pub fn append_to(&self, g: &mut HeGraph, input: NodeId) -> NodeId {
        let prev_phase_marker = g.node(input).phase;
        g.set_phase(Phase::Bootstrap);
        let mut cur = g.mod_raise(input, self.l_max);
        // CoeffToSlot: radix stages of BSGS linear transforms, finest
        // strides first.
        let mut stride = 1i64;
        for _ in 0..self.cts_stages {
            cur = self.bsgs_transform(g, cur, stride);
            stride *= self.stage_radix() as i64;
        }
        // Conjugation separates the real/imaginary coefficient halves.
        let conj = g.conjugate(cur);
        cur = g.add(cur, conj);
        // EvalMod: Paterson-Stockmeyer Chebyshev evaluation + double angle.
        cur = self.eval_mod(g, cur);
        // SlotToCoeff: inverse transform, coarsest strides first.
        let mut stride = (self.stage_radix() as i64).pow(self.sts_stages.saturating_sub(1) as u32);
        for _ in 0..self.sts_stages {
            cur = self.bsgs_transform(g, cur, -stride);
            stride /= self.stage_radix() as i64;
            if stride == 0 {
                stride = 1;
            }
        }
        g.set_phase(prev_phase_marker);
        cur
    }

    fn stage_radix(&self) -> usize {
        (self.diags_per_stage / 2).max(2)
    }

    /// One BSGS-evaluated sparse linear transform at stride `s`.
    ///
    /// The matrix diagonals are the same constants in every bootstrap
    /// invocation, so they are cached by `(stride, diagonal, level)` — the
    /// reuse the paper's compiler exploits to keep bootstrapping data
    /// resident (Sec. 6).
    fn bsgs_transform(&self, g: &mut HeGraph, input: NodeId, stride: i64) -> NodeId {
        let d = self.diags_per_stage;
        let level = g.node(input).level;
        let (baby, giant) = self.bsgs_rotations(d, level);
        // Baby rotations of the input.
        let mut babies = vec![input];
        for i in 1..baby {
            babies.push(g.rotate(input, stride * i as i64));
        }
        // Giant loop: sum_j rot_{j*baby} ( sum_i diag_{ji} * baby_i ).
        let mut acc: Option<NodeId> = None;
        for j in 0..giant {
            let mut inner: Option<NodeId> = None;
            for (i, &b) in babies.iter().take(d - j * baby).take(baby).enumerate() {
                let key = 0xB007_0000u64
                    .wrapping_add((stride.unsigned_abs()) << 20)
                    .wrapping_add((j * baby + i) as u64);
                let diag = g.plain_input_cached(key, level);
                let term = g.mul_plain(b, diag);
                inner = Some(match inner {
                    None => term,
                    Some(a) => g.add(a, term),
                });
            }
            let inner = inner.expect("giant step with no diagonals");
            let rotated = if j == 0 {
                inner
            } else {
                g.rotate(inner, stride * (j * baby) as i64)
            };
            acc = Some(match acc {
                None => rotated,
                Some(a) => g.add(a, rotated),
            });
        }
        let mut out = acc.expect("transform with no work");
        for _ in 0..self.cts_level_cost {
            out = g.rescale(out);
        }
        out
    }

    /// EvalMod: square chains for Chebyshev powers, combination multiplies,
    /// and double-angle steps, consuming `evalmod_levels` levels.
    fn eval_mod(&self, g: &mut HeGraph, input: NodeId) -> NodeId {
        let mut cur = input;
        let mut muls_done = 0;
        let mut levels_used = 0;
        // Power ladder: repeated squaring with rescale (Chebyshev powers +
        // double-angle iterations).
        while muls_done < self.evalmod_ct_muls && levels_used < self.evalmod_levels {
            let sq = g.mul_ct(cur, cur);
            cur = g.rescale(sq);
            muls_done += 1;
            levels_used += 1;
        }
        // Remaining pt-muls fold coefficients in.
        let mut pt_done = 0;
        while pt_done < self.evalmod_pt_muls && levels_used < self.evalmod_levels {
            let c = g.plain_input_cached(0xE7A1_0000 + pt_done as u64, g.node(cur).level);
            let t = g.mul_plain(cur, c);
            cur = g.rescale(t);
            pt_done += 1;
            levels_used += 1;
        }
        // Exact level accounting: burn any remainder as rescales
        // (scale-management levels).
        while levels_used < self.evalmod_levels {
            cur = g.rescale(cur);
            levels_used += 1;
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_isa::HeOp;

    const N: usize = 1 << 16;

    #[test]
    fn packed_plan_matches_lstm_budget_split() {
        // Sec. 2.3: budget 57, bootstrapping consumes the highest 35
        // levels, leaving 22.
        let p = BootstrapPlan::packed(N, 57);
        assert_eq!(p.levels_consumed(), 35);
        assert_eq!(p.output_level(), 22);
    }

    #[test]
    fn unpacked_plan_is_shallow() {
        // Sec. 8: unpacked bootstrapping has L <= 23.
        let p = BootstrapPlan::unpacked(N, 23);
        assert!(p.levels_consumed() <= 23);
        assert_eq!(p.slots, 1);
        // Far less work than packed.
        let (rp, cp, pp) = BootstrapPlan::packed(N, 57).op_counts();
        let (ru, cu, pu) = p.op_counts();
        assert!(ru * 4 < rp && cu < cp && pu * 4 < pp);
    }

    #[test]
    fn graph_expansion_respects_levels() {
        let plan = BootstrapPlan::packed(N, 57);
        let mut g = HeGraph::new();
        let x = g.input(3);
        let out = plan.append_to(&mut g, x);
        g.validate();
        assert_eq!(g.node(out).level, plan.output_level());
        assert_eq!(g.node(out).phase, Phase::Bootstrap);
        // The expansion starts with a ModRaise to the full budget.
        let raises = g
            .iter()
            .filter(|(_, n)| matches!(n.op, HeOp::ModRaise(_, l) if l == 57))
            .count();
        assert_eq!(raises, 1);
    }

    #[test]
    fn rotation_amounts_repeat_across_bootstraps() {
        // Every bootstrap invocation uses the same BSGS rotation amounts,
        // so keyswitch hints are fully reused across bootstraps — the
        // pattern that makes hint traffic amortizable (Sec. 6).
        let plan = BootstrapPlan::packed(N, 57);
        let mut g = HeGraph::new();
        let x = g.input(3);
        let y = g.input(3);
        plan.append_to(&mut g, x);
        plan.append_to(&mut g, y);
        let rots: Vec<i64> = g
            .iter()
            .filter_map(|(_, n)| match n.op {
                HeOp::Rotate(_, s) => Some(s),
                _ => None,
            })
            .collect();
        // The two bootstraps' rotation amounts are identical multisets.
        let (first, second) = rots.split_at(rots.len() / 2);
        let mut a = first.to_vec();
        let mut b = second.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "bootstraps should use identical rotation amounts");
    }

    #[test]
    fn op_counts_match_expansion() {
        let plan = BootstrapPlan::packed(N, 57);
        let (rot, ct_mul, pt_mul) = plan.op_counts();
        let mut g = HeGraph::new();
        let x = g.input(3);
        plan.append_to(&mut g, x);
        let h = g.op_histogram();
        // Rotations: op_counts predicts rotations + conjugations.
        assert!(
            (h.rotations as i64 - rot as i64).unsigned_abs() as usize <= rot / 3 + 2,
            "rotations {} vs predicted {rot}",
            h.rotations
        );
        assert_eq!(h.ct_muls, ct_mul);
        assert!(
            (h.plain_muls as i64 - pt_mul as i64).unsigned_abs() as usize <= pt_mul / 2 + 2,
            "pt muls {} vs predicted {pt_mul}",
            h.plain_muls
        );
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_budget_rejected() {
        let _ = BootstrapPlan::packed(N, 10);
    }
}
