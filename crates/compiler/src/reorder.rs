//! Operation ordering for reuse (Sec. 6, step 2).
//!
//! "These operations are then ordered to maximize reuse of operands using
//! a standard tiling analysis." Our benchmark generators already emit
//! reuse-friendly orders (BSGS kernels group their hint uses), so this
//! pass exists for programs that do not: it computes a topological order
//! that greedily groups operations sharing a keyswitch hint, so the hint
//! is fetched once while hot instead of once per scattered use.

use std::collections::{BTreeSet, HashMap};

use cl_isa::{HeGraph, HeOp, NodeId};

/// Affinity key: which large shared operand (keyswitch hint) an op uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Affinity {
    Relin,
    Rotation(i64),
    Conjugation,
}

fn affinity(op: &HeOp) -> Option<Affinity> {
    match op {
        HeOp::MulCt(..) => Some(Affinity::Relin),
        HeOp::Rotate(_, s) => Some(Affinity::Rotation(*s)),
        HeOp::Conjugate(_) => Some(Affinity::Conjugation),
        _ => None,
    }
}

/// Computes a reuse-friendly topological order of `graph`.
///
/// Greedy list scheduling: among ready nodes, prefer one sharing the
/// previously scheduled node's hint; otherwise take the earliest (original
/// program order, which keeps producer-consumer locality).
pub fn reuse_order(graph: &HeGraph) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut indegree = vec![0u32; n];
    let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (id, node) in graph.iter() {
        let mut ops = node.op.operands();
        ops.sort_unstable();
        ops.dedup();
        indegree[id.0 as usize] = ops.len() as u32;
        for o in ops {
            consumers[o.0 as usize].push(id.0);
        }
    }
    let mut ready: BTreeSet<u32> = (0..n as u32).filter(|&i| indegree[i as usize] == 0).collect();
    let mut ready_by_affinity: HashMap<Affinity, BTreeSet<u32>> = HashMap::new();
    for &i in &ready {
        if let Some(a) = affinity(&graph.node(NodeId(i)).op) {
            ready_by_affinity.entry(a).or_default().insert(i);
        }
    }
    let mut order = Vec::with_capacity(n);
    // Sticky affinity: keep preferring the last hint even while scheduling
    // the glue ops (inputs, adds) between its uses.
    let mut current: Option<Affinity> = None;
    while let Some(&first) = ready.iter().next() {
        // Prefer (1) a ready node with the same hint affinity; failing
        // that, (2) a ready node that directly unlocks one (its consumer
        // has the affinity and only this dependency left) — a one-step
        // lookahead; otherwise (3) program order.
        let same_affinity = current
            .and_then(|a| ready_by_affinity.get(&a).and_then(|s| s.iter().next().copied()));
        let unlocks = || {
            let a = current?;
            ready.iter().take(64).find(|&&r| {
                consumers[r as usize].iter().any(|&c| {
                    indegree[c as usize] == 1 && affinity(&graph.node(NodeId(c)).op) == Some(a)
                })
            }).copied()
        };
        let pick = same_affinity.or_else(unlocks).unwrap_or(first);
        ready.remove(&pick);
        if let Some(a) = affinity(&graph.node(NodeId(pick)).op) {
            if let Some(s) = ready_by_affinity.get_mut(&a) {
                s.remove(&pick);
            }
            current = Some(a);
        }
        order.push(NodeId(pick));
        for &c in &consumers[pick as usize] {
            indegree[c as usize] -= 1;
            if indegree[c as usize] == 0 {
                ready.insert(c);
                if let Some(a) = affinity(&graph.node(NodeId(c)).op) {
                    ready_by_affinity.entry(a).or_default().insert(c);
                }
            }
        }
    }
    assert_eq!(order.len(), n, "graph has a cycle");
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_topological() {
        let mut g = HeGraph::new();
        let x = g.input(5);
        let a = g.rotate(x, 1);
        let b = g.rotate(x, 2);
        let c = g.add(a, b);
        g.output(c);
        let order = reuse_order(&g);
        let pos: HashMap<u32, usize> =
            order.iter().enumerate().map(|(i, id)| (id.0, i)).collect();
        for (id, node) in g.iter() {
            for o in node.op.operands() {
                assert!(pos[&o.0] < pos[&id.0], "operand after user");
            }
        }
    }

    #[test]
    fn interleaved_rotations_get_grouped() {
        // Independent rotations alternating A,B,A,B,... should reorder so
        // equal amounts are adjacent (one hint stays hot).
        let mut g = HeGraph::new();
        let mut rotations = Vec::new();
        for i in 0..8 {
            let x = g.input(10);
            let amount = if i % 2 == 0 { 3 } else { 7 };
            rotations.push(g.rotate(x, amount));
        }
        for r in &rotations {
            g.output(*r);
        }
        let order = reuse_order(&g);
        // Count affinity switches among the rotation nodes in the order.
        let amounts: Vec<i64> = order
            .iter()
            .filter_map(|&id| match g.node(id).op {
                HeOp::Rotate(_, s) => Some(s),
                _ => None,
            })
            .collect();
        let switches = amounts.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(amounts.len(), 8);
        assert!(
            switches <= 1,
            "rotations should be grouped by amount, got {amounts:?}"
        );
    }

    #[test]
    fn already_grouped_order_is_preserved() {
        let mut g = HeGraph::new();
        let x = g.input(6);
        let mut acc = x;
        for _ in 0..3 {
            let r = g.rotate(acc, 5);
            acc = g.add(acc, r);
        }
        g.output(acc);
        let order = reuse_order(&g);
        assert_eq!(order.len(), g.num_nodes());
        // Serial chain: only one valid order.
        let expected: Vec<NodeId> = g.iter().map(|(id, _)| id).collect();
        assert_eq!(order, expected);
    }

    /// Builds a random same-level DAG from a compact recipe: each entry
    /// appends one node whose operands are picked among the existing ones.
    fn build_random_graph(recipe: &[(u8, u8, i8)]) -> HeGraph {
        let mut g = HeGraph::new();
        let mut values = vec![g.input(3)];
        for &(kind, sel, step) in recipe {
            let a = values[sel as usize % values.len()];
            let b = values[(sel as usize / 7) % values.len()];
            let v = match kind % 6 {
                0 => g.input(3),
                1 => g.add(a, b),
                2 => g.sub(a, b),
                3 => g.mul_ct(a, b),
                4 => g.rotate(a, step as i64),
                _ => g.conjugate(a),
            };
            values.push(v);
        }
        let last = *values.last().expect("non-empty");
        g.output(last);
        g
    }

    proptest::proptest! {
        #[test]
        fn reuse_order_is_a_valid_topological_permutation(
            recipe in proptest::collection::vec(
                (proptest::prelude::any::<u8>(), proptest::prelude::any::<u8>(),
                 proptest::prelude::any::<i8>()),
                0..150,
            )
        ) {
            let g = build_random_graph(&recipe);
            let order = reuse_order(&g);

            // Permutation: every node exactly once (the >64-ready-node
            // lookahead window must never drop or duplicate work).
            let mut ids: Vec<u32> = order.iter().map(|id| id.0).collect();
            ids.sort_unstable();
            let expected: Vec<u32> = (0..g.num_nodes() as u32).collect();
            proptest::prop_assert_eq!(&ids, &expected);

            // Topological: operands precede their users.
            let pos: HashMap<u32, usize> =
                order.iter().enumerate().map(|(i, id)| (id.0, i)).collect();
            for (id, node) in g.iter() {
                for o in node.op.operands() {
                    proptest::prop_assert!(
                        pos[&o.0] < pos[&id.0],
                        "operand {} scheduled after user {}", o.0, id.0
                    );
                }
            }

            // Deterministic: same graph, same order.
            proptest::prop_assert_eq!(&order, &reuse_order(&g));
        }
    }

    #[test]
    fn wide_frontier_beyond_lookahead_window_keeps_every_node() {
        // 200 independent chains: the ready set exceeds the 64-node
        // lookahead from the first step onward.
        let mut g = HeGraph::new();
        let mut sums = Vec::new();
        for i in 0..200 {
            let x = g.input(4);
            let r = g.rotate(x, (i % 9) as i64 - 4);
            sums.push(g.add(x, r));
        }
        let mut acc = sums[0];
        for &s in &sums[1..] {
            acc = g.add(acc, s);
        }
        g.output(acc);
        let order = reuse_order(&g);
        let mut ids: Vec<u32> = order.iter().map(|id| id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..g.num_nodes() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_a_real_benchmark_scale_graph() {
        // A few hundred nodes with mixed affinities terminates and stays
        // topological.
        let mut g = HeGraph::new();
        let mut last = g.input(20);
        for i in 0..100 {
            let x = g.input(20);
            let r = g.rotate(x, (i % 5) as i64 + 1);
            last = g.add(last, r);
        }
        g.output(last);
        let order = reuse_order(&g);
        assert_eq!(order.len(), g.num_nodes());
    }
}
