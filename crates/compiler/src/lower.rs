//! Lowering homomorphic operations to macro-operation resource profiles.

use cl_core::{ArchConfig, NetworkKind};
use cl_isa::{cost, FuKind, KsAlgorithm, MacroOp};

/// Register-file traffic reduction from vector chaining during
/// keyswitching (Sec. 5.4: "vector chaining reduces register file traffic
/// by 3.5x during keyswitching").
pub const CHAINING_RF_FACTOR: f64 = 3.5;

/// Number of clusters the crossbar traffic formula is normalized to
/// (Sec. 4.3 quotes `3·G·N·L` at `G = 8`).
const CROSSBAR_G: u64 = 8;

/// Each NTT in the four-step decomposition streams through the NTT unit
/// twice — a row pass and a column pass separated by the transpose network
/// (Sec. 5.3) — so one logical NTT occupies the unit for `2·N/E` issue
/// cycles.
const NTT_PASS_FACTOR: u64 = 2;

fn rf_words_for_passes(n: usize, passes: u64, chained: bool) -> u64 {
    // Each unchained pass reads two operands and writes one result:
    // 3N words through the register file.
    let raw = 3 * n as u64 * passes;
    if chained {
        // raw / 3.5 == 2*raw / 7, rounded up: a partial chaining window
        // still moves a whole word, and exact integer arithmetic keeps the
        // count stable where f64 division would truncate (or lose low bits
        // entirely above 2^53).
        (2 * raw).div_ceil(7)
    } else {
        raw
    }
}

/// Builds the macro-ops for one keyswitch at level `l` on `arch`.
///
/// With a CRB and chaining this is a single fused pipeline op (the paper
/// compiles each keyswitch into "a sequence of up to five FU pipelines";
/// the rate model folds them into one profile whose FU kinds overlap).
/// Without a CRB, the change-RNS-base work lowers to discrete multiply and
/// add passes whose register-file traffic is what swamps port bandwidth
/// (Sec. 2.5: "over 100 register file ports").
pub fn keyswitch_macro_ops(arch: &ArchConfig, n: usize, l: usize, alg: KsAlgorithm) -> MacroOp {
    let chained = arch.chaining;
    let mut op = MacroOp::new();
    match alg {
        KsAlgorithm::Boosted(t) => {
            let lu = l as u64;
            let tu = t as u64;
            let alpha = lu.div_ceil(tu);
            let counts = cost::boosted_keyswitch_ops(l, t);
            // NTT passes (Listing 1 lines 2, 4, 7, 9), two unit passes each.
            op = op.with_fu(FuKind::Ntt, NTT_PASS_FACTOR * counts.ntt);
            // Hint products and ModDown additions.
            let hint_mults = 2 * tu * (lu + alpha);
            let other_adds = 2 * (tu - 1) * (lu + alpha) + 2 * lu;
            op = op.with_fu(FuKind::Mul, hint_mults);
            op = op.with_fu(FuKind::Add, other_adds);
            // changeRNSBase work.
            let crb_streams = (tu + 2) * lu; // ModUp t*L + ModDown 2*L streams
            let crb_mult = cost::boosted_keyswitch_crb_mult(l, t);
            if arch.has_crb {
                op = op.with_fu(FuKind::Crb, crb_streams);
            } else {
                // Discrete MACs through the register file.
                op = op.with_fu(FuKind::Mul, crb_mult);
                op = op.with_fu(FuKind::Add, crb_mult);
            }
            // KSHGen regenerates the pseudo-random hint half on the fly.
            if arch.has_kshgen {
                op = op.with_fu(FuKind::KshGen, tu * (lu + alpha));
            }
            // Register-file traffic: all non-CRB passes move 3N words each
            // (divided by the chaining factor); without a CRB the MAC
            // passes hit the register file too.
            let mut rf_passes = counts.ntt + hint_mults + other_adds + tu * (lu + alpha);
            if !arch.has_crb {
                rf_passes += 2 * crb_mult;
            } else {
                rf_passes += crb_streams;
            }
            op = op.with_rf_words(rf_words_for_passes(n, rf_passes, chained));
            op = op.with_scalar_muls(counts.scalar_muls(n));
        }
        KsAlgorithm::Standard => {
            // F1 was designed around this algorithm: each digit's
            // NTT -> multiply -> accumulate runs as a fused cluster
            // pipeline, so register-file traffic is one read and one
            // write per pipeline stage chain, not per pass.
            let counts = cost::standard_keyswitch_ops(l);
            op = op.with_fu(FuKind::Ntt, NTT_PASS_FACTOR * counts.ntt);
            op = op.with_fu(FuKind::Mul, counts.mult);
            op = op.with_fu(FuKind::Add, counts.add);
            let rf_passes = counts.ntt + (counts.mult + counts.add) / 4;
            op = op.with_rf_words(rf_words_for_passes(n, rf_passes, true));
            op = op.with_scalar_muls(counts.scalar_muls(n));
        }
    }
    op
}

/// Network words for a keyswitch-bearing homomorphic op (Sec. 4.3).
pub fn network_words(arch: &ArchConfig, n: usize, l: usize, is_rotation: bool) -> u64 {
    match arch.network {
        NetworkKind::FixedTranspose => {
            if is_rotation {
                cost::craterlake_net_words_rot(n, l)
            } else {
                cost::craterlake_net_words_mul(n, l)
            }
        }
        NetworkKind::Crossbar => cost::cluster_net_words(n, l, CROSSBAR_G as usize),
    }
}

/// Lowers a non-keyswitch polynomial operation: `fu` passes over `passes`
/// residue polynomials with per-pass register-file traffic.
pub fn pointwise_op(_arch: &ArchConfig, n: usize, fu: FuKind, passes: u64) -> MacroOp {
    MacroOp::new()
        .with_fu(fu, passes)
        .with_rf_words(rf_words_for_passes(n, passes, false))
        .with_scalar_muls(passes * n as u64)
}

/// Lowers a rescale at level `l` (both ciphertext polynomials): INTT of the
/// dropped limb, base-convert it, subtract and scale, NTT back.
pub fn rescale_op(arch: &ArchConfig, n: usize, l: usize) -> MacroOp {
    let lu = l as u64;
    let ntt_passes = NTT_PASS_FACTOR * 2 * lu; // 2 INTT of dropped limb + 2(L-1) NTT back
    let mut op = MacroOp::new().with_fu(FuKind::Ntt, ntt_passes);
    let conv_streams = 2 * (lu - 1);
    if arch.has_crb {
        op = op.with_fu(FuKind::Crb, conv_streams);
    } else {
        op = op.with_fu(FuKind::Mul, conv_streams);
        op = op.with_fu(FuKind::Add, conv_streams);
    }
    op = op.with_fu(FuKind::Mul, 2 * (lu - 1)); // q^{-1} scaling
    op = op.with_fu(FuKind::Add, 2 * (lu - 1)); // subtraction
    let rf_passes = ntt_passes + 4 * (lu - 1) + conv_streams;
    op.with_rf_words(rf_words_for_passes(n, rf_passes, arch.chaining))
        .with_scalar_muls((2 * (lu - 1) + conv_streams) * n as u64)
}

/// Lowers a ModRaise to level `l` (base extension of both polynomials of a
/// low-level ciphertext to the full chain).
pub fn mod_raise_op(arch: &ArchConfig, n: usize, from: usize, to: usize) -> MacroOp {
    let streams = 2 * (to - from) as u64;
    let mut op = MacroOp::new().with_fu(FuKind::Ntt, NTT_PASS_FACTOR * 2 * to as u64);
    if arch.has_crb {
        op = op.with_fu(FuKind::Crb, streams);
    } else {
        op = op.with_fu(FuKind::Mul, streams * from as u64);
        op = op.with_fu(FuKind::Add, streams * from as u64);
    }
    op.with_rf_words(rf_words_for_passes(n, streams + 2 * to as u64, arch.chaining))
        .with_scalar_muls(streams * from as u64 * n as u64)
}

/// Lowered form of one homomorphic operation.
#[derive(Debug, Clone)]
pub enum LoweredOp {
    /// One macro-op.
    One(MacroOp),
    /// Nothing to execute (inputs, outputs, mod-drops).
    None,
}

/// Lowers an HE node kind at level `l`. Keyswitch-bearing ops get the
/// keyswitch pipeline merged in, plus their transpose/network traffic.
pub fn lower_node(
    arch: &ArchConfig,
    n: usize,
    node_op: &cl_isa::HeOp,
    l: usize,
    alg: KsAlgorithm,
) -> LoweredOp {
    use cl_isa::HeOp;
    let lu = l as u64;
    match node_op {
        HeOp::Input | HeOp::PlainInput | HeOp::Output(_) | HeOp::ModDrop(..) => LoweredOp::None,
        HeOp::Add(..) | HeOp::Sub(..) => LoweredOp::One(pointwise_op(arch, n, FuKind::Add, 2 * lu)),
        HeOp::AddPlain(..) => LoweredOp::One(pointwise_op(arch, n, FuKind::Add, lu)),
        HeOp::MulPlain(..) => LoweredOp::One(pointwise_op(arch, n, FuKind::Mul, 2 * lu)),
        HeOp::Rescale(_) => LoweredOp::One(rescale_op(arch, n, l + 1)),
        HeOp::ModRaise(_, to) => LoweredOp::One(mod_raise_op(arch, n, l.min(3), *to)),
        HeOp::MulCt(..) => {
            let mut op = keyswitch_macro_ops(arch, n, l, alg);
            // Tensor products and final additions.
            let tensor = MacroOp::new()
                .with_fu(FuKind::Mul, 4 * lu)
                .with_fu(FuKind::Add, 3 * lu)
                .with_rf_words(rf_words_for_passes(n, 7 * lu, arch.chaining))
                .with_scalar_muls(4 * lu * n as u64);
            op.merge(&tensor);
            op = op.with_net_words(network_words(arch, n, l, false));
            LoweredOp::One(op)
        }
        HeOp::Rotate(..) | HeOp::Conjugate(..) => {
            let mut op = keyswitch_macro_ops(arch, n, l, alg);
            let aut = MacroOp::new()
                .with_fu(FuKind::Automorphism, 2 * lu)
                .with_fu(FuKind::Add, lu)
                .with_rf_words(rf_words_for_passes(n, 3 * lu, arch.chaining))
                .with_scalar_muls(lu * n as u64);
            op.merge(&aut);
            op = op.with_net_words(network_words(arch, n, l, true));
            LoweredOp::One(op)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1 << 16;

    #[test]
    fn crb_absorbs_quadratic_work() {
        let cl = ArchConfig::craterlake();
        let no_crb = ArchConfig::craterlake().without_crb_chaining();
        let l = 57;
        let with_crb = keyswitch_macro_ops(&cl, N, l, KsAlgorithm::Boosted(1));
        let without = keyswitch_macro_ops(&no_crb, N, l, KsAlgorithm::Boosted(1));
        // With CRB: O(L) passes on the CRB unit.
        assert_eq!(with_crb.passes(FuKind::Crb), 3 * l as u64);
        assert_eq!(with_crb.passes(FuKind::Mul), 4 * l as u64);
        // Without: the 3L^2-ish MACs land on Mul/Add.
        assert!(without.passes(FuKind::Mul) > 3 * (l as u64) * (l as u64));
        assert_eq!(without.passes(FuKind::Crb), 0);
        // And the register-file traffic balloons (loss of CRB internal
        // buffering AND loss of chaining).
        assert!(without.rf_words > 10 * with_crb.rf_words);
    }

    #[test]
    fn kshgen_only_when_present() {
        let cl = ArchConfig::craterlake();
        let no_gen = ArchConfig::craterlake().without_kshgen();
        let with_gen = keyswitch_macro_ops(&cl, N, 30, KsAlgorithm::Boosted(1));
        let without = keyswitch_macro_ops(&no_gen, N, 30, KsAlgorithm::Boosted(1));
        assert!(with_gen.passes(FuKind::KshGen) > 0);
        assert_eq!(without.passes(FuKind::KshGen), 0);
    }

    #[test]
    fn standard_keyswitch_is_ntt_heavy() {
        let cl = ArchConfig::craterlake();
        let l = 8;
        let std = keyswitch_macro_ops(&cl, N, l, KsAlgorithm::Standard);
        let boosted = keyswitch_macro_ops(&cl, N, l, KsAlgorithm::Boosted(1));
        assert_eq!(std.passes(FuKind::Ntt), 2 * (l * l) as u64); // two unit passes per NTT
        assert!(boosted.passes(FuKind::Ntt) < std.passes(FuKind::Ntt));
    }

    #[test]
    fn network_traffic_formulas() {
        let cl = ArchConfig::craterlake();
        let f1 = ArchConfig::f1_plus();
        let l = 57;
        // CraterLake: 8NL for muls, 10NL for rotations.
        assert_eq!(network_words(&cl, N, l, false), 8 * (N as u64) * l as u64);
        assert_eq!(network_words(&cl, N, l, true), 10 * (N as u64) * l as u64);
        // Crossbar with residue tiling: 3*8*N*L — ~2.4x more than 10NL.
        let xbar = network_words(&f1, N, l, true);
        assert_eq!(xbar, 24 * (N as u64) * l as u64);
        assert!((xbar as f64 / network_words(&cl, N, l, true) as f64 - 2.4).abs() < 0.01);
    }

    #[test]
    fn lowered_rotation_includes_automorphism_and_keyswitch() {
        let cl = ArchConfig::craterlake();
        let op = lower_node(
            &cl,
            N,
            &cl_isa::HeOp::Rotate(cl_isa::NodeId(0), 5),
            40,
            KsAlgorithm::Boosted(1),
        );
        let LoweredOp::One(op) = op else {
            panic!("rotation must lower to work")
        };
        assert!(op.passes(FuKind::Automorphism) > 0);
        assert!(op.passes(FuKind::Ntt) > 0);
        assert!(op.net_words > 0);
    }

    #[test]
    fn chained_rf_words_round_up_exactly() {
        // One pass at N=64K: raw = 196608 words, and 196608 / 3.5 =
        // 56173.714..., so the chained count must round UP to 56174. The
        // old float path truncated to 56173, undercounting traffic.
        assert_eq!(rf_words_for_passes(N, 1, true), 56174);
        // Unchained traffic is untouched.
        assert_eq!(rf_words_for_passes(N, 1, false), 196_608);
        // Exact multiples of the 2/7 ratio stay exact (no over-rounding).
        assert_eq!(rf_words_for_passes(7, 1, true), 6);
        // Ceiling, never floor, across a sweep of pass counts.
        for passes in 1..64u64 {
            let raw = 3 * N as u64 * passes;
            let got = rf_words_for_passes(N, passes, true);
            assert!(7 * got >= 2 * raw, "passes={passes}: rounded down");
            assert!(7 * got < 2 * raw + 7, "passes={passes}: rounded too far up");
        }
    }

    #[test]
    fn chaining_reduces_rf_traffic() {
        let mut unchained = ArchConfig::craterlake();
        unchained.chaining = false;
        let chained = ArchConfig::craterlake();
        let a = keyswitch_macro_ops(&chained, N, 40, KsAlgorithm::Boosted(2));
        let b = keyswitch_macro_ops(&unchained, N, 40, KsAlgorithm::Boosted(2));
        let ratio = b.rf_words as f64 / a.rf_words as f64;
        assert!((CHAINING_RF_FACTOR - 0.01..CHAINING_RF_FACTOR + 0.01).contains(&ratio));
    }

    #[test]
    fn inputs_and_outputs_lower_to_nothing() {
        let cl = ArchConfig::craterlake();
        assert!(matches!(
            lower_node(&cl, N, &cl_isa::HeOp::Input, 10, KsAlgorithm::Boosted(1)),
            LoweredOp::None
        ));
        assert!(matches!(
            lower_node(
                &cl,
                N,
                &cl_isa::HeOp::Output(cl_isa::NodeId(0)),
                10,
                KsAlgorithm::Boosted(1)
            ),
            LoweredOp::None
        ));
    }
}
