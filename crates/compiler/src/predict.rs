//! Closed-form op-count prediction for compiled [`Program`]s.
//!
//! [`predict_program`] walks a pipeline program symbolically — tracking only
//! the accumulator's and each slot's RNS level — and computes the exact
//! [`OpSnapshot`] the instrumented kernels will report when the program
//! runs: NTT/INTT passes, element-wise multiply/add passes, base-conversion
//! limb conversions, automorphism applications, and the whole-ciphertext
//! rotation / ct-mult / pt-mult tallies. The end-to-end tests assert
//! prediction == measurement field by field, which makes the compiler's
//! cost model a tested invariant rather than documentation.
//!
//! The recipes mirror `cl-ckks`'s implementation exactly:
//!
//! - keyswitching hoists the target polynomial (one inverse NTT over its
//!   limbs, then per-digit base extension into the special basis), runs the
//!   hint inner product over the extended basis, and mod-downs both result
//!   halves;
//! - rescale is a pair of exact single-limb mod-downs over the cached base
//!   converter;
//! - plaintext ops pay one encode (forward NTT over the ciphertext's basis).
//!
//! Counts assume a **warm hint cache**: seeded hint expansion on a cold
//! first run adds `hint_regen` (and expansion NTT) passes the model does
//! not include, so measure a second run after warming (the tests do).

use std::collections::BTreeMap;

use cl_ckks::KeySwitchKind;
use cl_runtime::{PipelineOp, Program};
use cl_trace::OpSnapshot;

/// Why a program's cost could not be predicted.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictError {
    /// `Bootstrap` expands into the functional bootstrapper's own pipeline,
    /// whose cost is not part of this model.
    Bootstrap {
        /// Index of the bootstrap op.
        index: usize,
    },
    /// An op reads a slot no prior op stored (the executor would fail the
    /// same way).
    EmptySlot {
        /// Index of the offending op.
        index: usize,
        /// The slot it read.
        slot: u16,
    },
    /// An op needs more level than the accumulator has (rescale below
    /// level 2, mod-drop upward, plain-multiply at level 1).
    Level {
        /// Index of the offending op.
        index: usize,
        /// Short name of the op.
        op: &'static str,
        /// Accumulator level at that point.
        level: usize,
    },
    /// A binary slot op combines operands at different levels — the strict
    /// executor rejects this, so the prediction would never be observable.
    LevelMismatch {
        /// Index of the offending op.
        index: usize,
        /// Accumulator level.
        acc: usize,
        /// Slot level.
        slot: usize,
    },
    /// `Input(i)` indexes past the declared input levels.
    MissingInput {
        /// The out-of-range input index.
        index: u16,
    },
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::Bootstrap { index } => {
                write!(f, "op {index}: bootstrap cost is outside the prediction model")
            }
            PredictError::EmptySlot { index, slot } => {
                write!(f, "op {index}: reads slot {slot} before any store")
            }
            PredictError::Level { index, op, level } => {
                write!(f, "op {index}: {op} needs more level than {level}")
            }
            PredictError::LevelMismatch { index, acc, slot } => {
                write!(f, "op {index}: accumulator level {acc} vs slot level {slot}")
            }
            PredictError::MissingInput { index } => {
                write!(f, "input {index} not covered by input_levels")
            }
        }
    }
}

impl std::error::Error for PredictError {}

/// Per-digit keyswitch layout at ciphertext level `l`: how `cl-ckks`
/// partitions the modulus chain for `kind` over a context with `l_max`
/// levels.
struct KsLayout {
    /// Special-basis limb count `K` (the extension every digit is raised
    /// into).
    special: usize,
    /// Limb count of each digit that intersects `[0, l)`.
    present: Vec<usize>,
}

fn ks_layout(l: usize, l_max: usize, kind: KeySwitchKind) -> KsLayout {
    match kind {
        KeySwitchKind::Standard => KsLayout {
            special: 1,
            present: vec![1; l.min(l_max)],
        },
        KeySwitchKind::Boosted { digits } => {
            let alpha = l_max.div_ceil(digits);
            let mut present = Vec::new();
            let mut start = 0;
            while start < l_max {
                let end = (start + alpha).min(l_max);
                let in_ct = end.min(l).saturating_sub(start);
                if in_ct > 0 {
                    present.push(in_ct);
                }
                start = end;
            }
            KsLayout {
                special: alpha,
                present,
            }
        }
    }
}

/// `mod_down_ntt` from a `q`-limb + `p`-limb basis back to `q` limbs.
fn mod_down(s: &mut OpSnapshot, q: usize, p: usize) {
    s.intt += p as u64;
    s.ntt += q as u64;
    s.mult += (p + 2 * q) as u64;
    s.add += (2 * q) as u64;
    s.base_conv += (p * q) as u64;
}

/// Hoisting: decompose a level-`l` polynomial into per-digit extended form.
fn hoist(s: &mut OpSnapshot, l: usize, lay: &KsLayout) {
    s.intt += l as u64;
    for &sd in &lay.present {
        let ext = (l + lay.special) - sd;
        s.mult += sd as u64;
        s.base_conv += (sd * ext) as u64;
        s.ntt += ext as u64;
    }
}

/// Hint inner product over the extended basis, with the automorphism fused
/// into the accumulation when `galois` (rotations/conjugations).
fn inner_product(s: &mut OpSnapshot, l: usize, lay: &KsLayout, galois: bool) {
    let ext = (l + lay.special) as u64;
    for _ in &lay.present {
        s.mult += 2 * ext;
        s.add += 2 * ext;
        if galois {
            s.automorph += ext;
        }
    }
}

/// Both keyswitch result halves mod-downed from the extended basis.
fn mod_down_pair(s: &mut OpSnapshot, l: usize, lay: &KsLayout) {
    mod_down(s, l, lay.special);
    mod_down(s, l, lay.special);
}

/// One full keyswitch of a level-`l` ciphertext.
fn keyswitch(s: &mut OpSnapshot, l: usize, l_max: usize, kind: KeySwitchKind, galois: bool) {
    let lay = ks_layout(l, l_max, kind);
    hoist(s, l, &lay);
    inner_product(s, l, &lay, galois);
    mod_down_pair(s, l, &lay);
}

/// Rescale: two exact single-limb mod-downs (cached converter), level `l`
/// dropping to `l - 1`.
fn rescale(s: &mut OpSnapshot, l: usize) {
    mod_down(s, l - 1, 1);
    mod_down(s, l - 1, 1);
}

/// A rotation/conjugation at level `l`: keyswitch the hoisted `c1` with the
/// automorphism fused, rotate `c0` directly, and recombine.
fn galois_op(s: &mut OpSnapshot, l: usize, l_max: usize, kind: KeySwitchKind) {
    s.rotations += 1;
    keyswitch(s, l, l_max, kind, true);
    s.automorph += l as u64;
    s.add += l as u64;
}

/// Predicts the exact instrumented-kernel op counts of running `program`
/// once with a warm hint cache.
///
/// `l_max` is the context's full level count (`params().levels()`), `kind`
/// the keyswitch variant every key in the bundle was generated with, and
/// `input_levels[i]` the level of pipeline input `i` (the accumulator
/// starts at `input_levels[0]`).
///
/// The `bytes` and `hint_regen` fields of the result are left at zero:
/// bytes scale all other counters by `8·N` and regen is a cold-cache
/// artifact, so neither adds information to the equality the tests check.
///
/// # Errors
///
/// See [`PredictError`] — bootstraps, empty-slot reads, level underflows,
/// and strict-mode level mismatches are rejected rather than mispredicted.
pub fn predict_program(
    l_max: usize,
    kind: KeySwitchKind,
    input_levels: &[usize],
    program: &Program,
) -> Result<OpSnapshot, PredictError> {
    let mut s = OpSnapshot::default();
    let mut acc = *input_levels.first().ok_or(PredictError::MissingInput { index: 0 })?;
    let mut slots: BTreeMap<u16, usize> = BTreeMap::new();
    for (index, op) in program.ops().iter().enumerate() {
        match op {
            PipelineOp::Square => {
                s.ct_mults += 1;
                s.mult += 3 * acc as u64;
                s.add += acc as u64;
                keyswitch(&mut s, acc, l_max, kind, false);
                s.add += 2 * acc as u64;
            }
            PipelineOp::Rescale => {
                if acc < 2 {
                    return Err(PredictError::Level { index, op: "rescale", level: acc });
                }
                rescale(&mut s, acc);
                acc -= 1;
            }
            PipelineOp::AddPlain(_) => {
                s.ntt += acc as u64; // encode at the ciphertext's basis
                s.add += acc as u64;
            }
            PipelineOp::MulPlain(_) => {
                if acc < 2 {
                    return Err(PredictError::Level { index, op: "mul_plain", level: acc });
                }
                s.pt_mults += 1;
                s.ntt += acc as u64;
                s.mult += 2 * acc as u64;
            }
            PipelineOp::MulPlainRescale(_) => {
                if acc < 2 {
                    return Err(PredictError::Level {
                        index,
                        op: "mul_plain_rescale",
                        level: acc,
                    });
                }
                s.pt_mults += 1;
                s.ntt += acc as u64;
                s.mult += 2 * acc as u64;
                rescale(&mut s, acc);
                acc -= 1;
            }
            PipelineOp::Rotate(_) | PipelineOp::Conjugate => {
                galois_op(&mut s, acc, l_max, kind);
            }
            PipelineOp::RotateHoisted { steps, dsts } => {
                let lay = ks_layout(acc, l_max, kind);
                hoist(&mut s, acc, &lay);
                for _ in steps {
                    s.rotations += 1;
                    inner_product(&mut s, acc, &lay, true);
                    mod_down_pair(&mut s, acc, &lay);
                    s.automorph += acc as u64;
                    s.add += acc as u64;
                }
                for &d in dsts {
                    slots.insert(d, acc);
                }
            }
            PipelineOp::Bootstrap => return Err(PredictError::Bootstrap { index }),
            PipelineOp::Load(i) => {
                acc = *slots
                    .get(i)
                    .ok_or(PredictError::EmptySlot { index, slot: *i })?;
            }
            PipelineOp::Store(i) => {
                slots.insert(*i, acc);
            }
            PipelineOp::Free(i) => {
                slots
                    .remove(i)
                    .ok_or(PredictError::EmptySlot { index, slot: *i })?;
            }
            PipelineOp::Input(i) => {
                acc = *input_levels
                    .get(*i as usize)
                    .ok_or(PredictError::MissingInput { index: *i })?;
            }
            PipelineOp::AddSlot(i) | PipelineOp::SubSlot(i) => {
                let sl = *slots
                    .get(i)
                    .ok_or(PredictError::EmptySlot { index, slot: *i })?;
                if sl != acc {
                    return Err(PredictError::LevelMismatch { index, acc, slot: sl });
                }
                s.add += 2 * acc as u64;
            }
            PipelineOp::MulCtSlot(i) => {
                let sl = *slots
                    .get(i)
                    .ok_or(PredictError::EmptySlot { index, slot: *i })?;
                if sl != acc {
                    return Err(PredictError::LevelMismatch { index, acc, slot: sl });
                }
                s.ct_mults += 1;
                s.mult += 4 * acc as u64;
                s.add += acc as u64;
                keyswitch(&mut s, acc, l_max, kind, false);
                s.add += 2 * acc as u64;
            }
            PipelineOp::ModDropTo(t) => {
                let t = *t as usize;
                if t > acc || t == 0 {
                    return Err(PredictError::Level { index, op: "mod_drop_to", level: acc });
                }
                acc = t;
            }
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_cost_closed_form_standard_kind() {
        // l = 2, l_max = 4, Standard: special K = 1, two present digits of
        // one limb each. Worked by hand from the cl-ckks recipes:
        //   hoist:       intt 2; per digit (s=1, ext=2): mult 1, bc 2, ntt 2
        //   inner:       per digit over 3 limbs: mult 6, add 6, automorph 3
        //   mod-down ×2: intt 1, ntt 2, mult 5, add 4, bc 2 each
        //   c0 path:     automorph 2, add 2
        let p = Program::from_ops(vec![PipelineOp::Rotate(1)]);
        let s = predict_program(4, KeySwitchKind::Standard, &[2], &p).unwrap();
        assert_eq!(s.ntt, 8);
        assert_eq!(s.intt, 4);
        assert_eq!(s.mult, 24);
        assert_eq!(s.add, 22);
        assert_eq!(s.base_conv, 8);
        assert_eq!(s.automorph, 8);
        assert_eq!(s.rotations, 1);
        assert_eq!(s.ct_mults, 0);
        assert_eq!(s.pt_mults, 0);
    }

    #[test]
    fn hoisted_batch_shares_one_decomposition() {
        // Two hoisted steps must cost exactly one hoist less than two
        // standalone rotations.
        let single = Program::from_ops(vec![PipelineOp::Rotate(1), PipelineOp::Rotate(2)]);
        let hoisted = Program::from_ops(vec![
            PipelineOp::RotateHoisted {
                steps: vec![1, 2],
                dsts: vec![0, 1],
            },
            PipelineOp::Free(0),
            PipelineOp::Free(1),
        ]);
        let kind = KeySwitchKind::Boosted { digits: 2 };
        let a = predict_program(6, kind, &[4], &single).unwrap();
        let b = predict_program(6, kind, &[4], &hoisted).unwrap();
        assert_eq!(a.rotations, b.rotations);
        assert!(b.intt < a.intt, "hoisting saves the second decomposition");
        assert!(b.ntt < a.ntt);
        assert!(b.base_conv < a.base_conv);
        assert_eq!(a.add, b.add, "inner products and recombines match");
    }

    #[test]
    fn level_tracking_flows_through_rescale_and_slots() {
        // A rotation after a rescale is cheaper than before it.
        let p = Program::from_ops(vec![
            PipelineOp::Rotate(1),
            PipelineOp::Rescale,
            PipelineOp::Rotate(1),
        ]);
        let s = predict_program(6, KeySwitchKind::Standard, &[4], &p).unwrap();
        let one_at_4 =
            predict_program(6, KeySwitchKind::Standard, &[4], &Program::from_ops(vec![PipelineOp::Rotate(1)]))
                .unwrap();
        let one_at_3 =
            predict_program(6, KeySwitchKind::Standard, &[3], &Program::from_ops(vec![PipelineOp::Rotate(1)]))
                .unwrap();
        let resc =
            predict_program(6, KeySwitchKind::Standard, &[4], &Program::from_ops(vec![PipelineOp::Rescale]))
                .unwrap();
        assert_eq!(s, one_at_4.plus(&one_at_3).plus(&resc));
    }

    #[test]
    fn prediction_rejects_what_the_executor_would() {
        let kind = KeySwitchKind::Standard;
        let load = Program::from_ops(vec![PipelineOp::Load(0)]);
        assert!(matches!(
            predict_program(4, kind, &[2], &load),
            Err(PredictError::EmptySlot { slot: 0, .. })
        ));
        let boot = Program::from_ops(vec![PipelineOp::Bootstrap]);
        assert!(matches!(
            predict_program(4, kind, &[2], &boot),
            Err(PredictError::Bootstrap { index: 0 })
        ));
        let low = Program::from_ops(vec![PipelineOp::Rescale]);
        assert!(matches!(
            predict_program(4, kind, &[1], &low),
            Err(PredictError::Level { op: "rescale", .. })
        ));
        let mismatch = Program::from_ops(vec![
            PipelineOp::Store(0),
            PipelineOp::Rescale,
            PipelineOp::AddSlot(0),
        ]);
        assert!(matches!(
            predict_program(4, kind, &[3], &mismatch),
            Err(PredictError::LevelMismatch { acc: 2, slot: 3, .. })
        ));
        let missing = Program::from_ops(vec![PipelineOp::Input(5)]);
        assert!(matches!(
            predict_program(4, kind, &[2], &missing),
            Err(PredictError::MissingInput { index: 5 })
        ));
    }
}
