//! Scheduling: drives the machine through a graph in order, with next-use
//! chains for Belady residency and per-level keyswitch-variant selection.

use std::collections::{HashMap, HashSet};

use cl_ckks::security::{min_digits_for_level, SecurityLevel};
use cl_core::{ArchConfig, Machine, Stats, ValueClass};
use cl_isa::{HeGraph, HeOp, KsAlgorithm, NodeId, OpLabel, Phase, TrafficClass, ValueId};

use crate::lower::{lower_node, LoweredOp};

/// Errors surfaced while compiling a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// No digit count can support the requested level at the requested
    /// security target: even the most aggressive decomposition exceeds the
    /// modulus budget `max_log_qp(n, security)`. Compiling anyway (the old
    /// behavior was a silent `Boosted(4)` fallback) would produce a plan
    /// that does not meet its own security claim.
    UnsatisfiableSecurity {
        /// Ring degree of the attempted configuration.
        n: usize,
        /// Ciphertext level the policy was asked to serve.
        level: usize,
        /// RNS limb width in bits.
        word_bits: u32,
        /// The security target that could not be met.
        security: SecurityLevel,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::UnsatisfiableSecurity {
                n,
                level,
                word_bits,
                security,
            } => write!(
                f,
                "no keyswitch digit count reaches level {level} at N={n} with \
                 {word_bits}-bit limbs under {security:?} security"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// Keyswitch-variant selection policy (Sec. 3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KsPolicy {
    /// Always the same algorithm.
    Fixed(KsAlgorithm),
    /// The fewest digits that meet a security level at each level
    /// (CraterLake's policy: e.g. at 80-bit / `N = 64K`, 1-digit for
    /// `L <= 52`, 2-digit above).
    SecurityDriven(SecurityLevel),
    /// The per-level best algorithm including standard keyswitching below
    /// the boosted crossover (`L ≈ 14`) — the policy given to F1+ (Sec. 8).
    BestPerLevel(SecurityLevel),
}

impl KsPolicy {
    /// The algorithm chosen at level `l` for ring degree `n`.
    ///
    /// Returns [`CompileError::UnsatisfiableSecurity`] when no digit count
    /// can reach `l` within the security target's modulus budget — there is
    /// no sound fallback in that regime, so the error must propagate rather
    /// than compile a plan below its claimed security.
    pub fn try_algorithm(
        &self,
        n: usize,
        l: usize,
        word_bits: u32,
    ) -> Result<KsAlgorithm, CompileError> {
        let driven = |sec: SecurityLevel| {
            min_digits_for_level(n, sec, l, word_bits)
                .map(KsAlgorithm::Boosted)
                .ok_or(CompileError::UnsatisfiableSecurity {
                    n,
                    level: l,
                    word_bits,
                    security: sec,
                })
        };
        match *self {
            KsPolicy::Fixed(a) => Ok(a),
            KsPolicy::SecurityDriven(sec) => driven(sec),
            KsPolicy::BestPerLevel(sec) => {
                if l <= cl_isa::cost::boosted_crossover_level(n) {
                    Ok(KsAlgorithm::Standard)
                } else {
                    driven(sec)
                }
            }
        }
    }

    /// The algorithm chosen at level `l` for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if the `(n, l)` point is unreachable at the policy's security
    /// target (see [`KsPolicy::try_algorithm`]).
    pub fn algorithm(&self, n: usize, l: usize, word_bits: u32) -> KsAlgorithm {
        match self.try_algorithm(n, l, word_bits) {
            Ok(a) => a,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Ring degree the program runs at.
    pub n: usize,
    /// Keyswitch policy.
    pub ks_policy: KsPolicy,
    /// Apply the reuse-reordering pass (Sec. 6 step 2) before scheduling.
    /// Off by default: the benchmark generators already emit
    /// reuse-friendly orders.
    pub reorder: bool,
}

impl CompileOptions {
    /// Default options for the paper's main evaluation: `N = 64K`, 80-bit
    /// security-driven keyswitching.
    pub fn paper_default() -> Self {
        Self {
            n: 1 << 16,
            ks_policy: KsPolicy::SecurityDriven(SecurityLevel::Bits80),
            reorder: false,
        }
    }
}

/// Identifies a keyswitch hint by the key it applies. One hint object
/// serves all levels (lower-level uses stream a subset of its limbs, so a
/// resident hint covers them all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KshKey {
    Relin,
    Rotation(i64),
    Conjugation,
}

/// Compiles `graph` for `arch` and executes it on the machine model,
/// returning the run's statistics.
///
/// This performs the compiler's two passes: first next-use analysis over
/// ciphertext values and keyswitch hints (feeding Belady eviction), then
/// in-order lowering and execution against the machine's resource
/// timelines.
///
/// # Panics
///
/// Panics if the graph is malformed (see [`HeGraph::validate`]), an operand
/// set exceeds the register file, or the keyswitch policy is unsatisfiable
/// at some node's level (use [`try_compile_and_run`] to handle that case).
pub fn compile_and_run(graph: &HeGraph, arch: &ArchConfig, opts: &CompileOptions) -> Stats {
    match try_compile_and_run(graph, arch, opts) {
        Ok(stats) => stats,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`compile_and_run`]: returns a typed error when the
/// keyswitch policy cannot meet its security target at some node's level
/// instead of silently degrading the decomposition.
///
/// # Panics
///
/// Panics if the graph is malformed (see [`HeGraph::validate`]) or an
/// operand set exceeds the register file.
pub fn try_compile_and_run(
    graph: &HeGraph,
    arch: &ArchConfig,
    opts: &CompileOptions,
) -> Result<Stats, CompileError> {
    graph.validate();
    let n = opts.n;
    let word_bits = arch.word_bits;
    // Execution order: program order, or the reuse-grouping order.
    let order: Vec<NodeId> = if opts.reorder {
        crate::reuse_order(graph)
    } else {
        graph.iter().map(|(id, _)| id).collect()
    };
    let mut position = vec![0u32; graph.num_nodes()];
    for (pos, id) in order.iter().enumerate() {
        position[id.0 as usize] = pos as u32;
    }
    // ---- Pass 1: uses of each value (node outputs and hints), in
    // execution order (positions feed Belady's next-use distances).
    let mut value_uses: HashMap<ValueId, Vec<u32>> = HashMap::new();
    let mut ksh_ids: HashMap<KshKey, ValueId> = HashMap::new();
    let mut next_value_id = graph.num_nodes() as u64;
    let node_value = |id: NodeId| ValueId(id.0 as u64);
    let mut ksh_of_node: HashMap<u32, ValueId> = HashMap::new();
    let mut ksh_max_level: HashMap<ValueId, usize> = HashMap::new();
    for &id in &order {
        let node = graph.node(id);
        let pos = position[id.0 as usize];
        for opnd in node.op.operands() {
            // ModDrop aliases its operand; uses of the alias count as uses
            // of the underlying value only if the drop were free. We treat
            // drops as distinct zero-cost values instead (see lowering).
            value_uses.entry(node_value(opnd)).or_default().push(pos);
        }
        if node.op.needs_keyswitch() {
            let key = match node.op {
                HeOp::MulCt(..) => KshKey::Relin,
                HeOp::Rotate(_, s) => KshKey::Rotation(s),
                HeOp::Conjugate(_) => KshKey::Conjugation,
                _ => unreachable!(),
            };
            let vid = *ksh_ids.entry(key).or_insert_with(|| {
                let v = ValueId(next_value_id);
                next_value_id += 1;
                v
            });
            ksh_of_node.insert(id.0, vid);
            let e = ksh_max_level.entry(vid).or_insert(0);
            *e = (*e).max(node.level);
            value_uses.entry(vid).or_default().push(pos);
        }
    }
    // ---- Pass 2: declare values and execute in order.
    let mut machine = Machine::new(arch.clone());
    // Hint sizes: seeded (KSHGen) hints store only half.
    let mut declared_ksh: HashSet<ValueId> = HashSet::new();
    let ct_words = |level: usize| 2 * level as u64 * n as u64;
    for &id in &order {
        let node = graph.node(id);
        let class = match node.op {
            HeOp::Input => ValueClass::Backed(TrafficClass::Input),
            HeOp::PlainInput => ValueClass::Backed(TrafficClass::Input),
            _ => ValueClass::Intermediate,
        };
        let words = match node.op {
            HeOp::PlainInput => node.level as u64 * n as u64,
            _ => ct_words(node.level),
        };
        machine.declare(node_value(id), words, class);
        if let Some(&ksh) = ksh_of_node.get(&id.0) {
            if declared_ksh.insert(ksh) {
                // Size the hint for the highest level it serves; uses at
                // lower levels read a subset of the same object.
                let lmax = ksh_max_level[&ksh] as u64;
                let alg = opts
                    .ks_policy
                    .try_algorithm(n, ksh_max_level[&ksh], word_bits)?;
                let ksh_words = match alg {
                    KsAlgorithm::Boosted(t) => {
                        let alpha = lmax.div_ceil(t as u64);
                        let polys = if arch.has_kshgen { 1 } else { 2 };
                        t as u64 * polys * (lmax + alpha) * n as u64
                    }
                    KsAlgorithm::Standard => {
                        let polys = if arch.has_kshgen { 1 } else { 2 };
                        lmax * polys * (lmax + 1) * n as u64
                    }
                };
                machine.declare(ksh, ksh_words, ValueClass::Backed(TrafficClass::Ksh));
            }
        }
    }
    // Track, per value, a cursor into its use list.
    let mut use_cursor: HashMap<ValueId, usize> = HashMap::new();
    let next_use_after = |value_uses: &HashMap<ValueId, Vec<u32>>,
                          cursor: &mut HashMap<ValueId, usize>,
                          v: ValueId|
     -> u32 {
        let uses = value_uses.get(&v).map(|u| u.as_slice()).unwrap_or(&[]);
        let c = cursor.entry(v).or_insert(0);
        *c += 1;
        uses.get(*c).copied().unwrap_or(u32::MAX)
    };
    let first_use = |value_uses: &HashMap<ValueId, Vec<u32>>, v: ValueId| -> u32 {
        value_uses
            .get(&v)
            .and_then(|u| u.first().copied())
            .unwrap_or(u32::MAX)
    };
    for &id in &order {
        let node = graph.node(id);
        let label = match node.phase {
            Phase::App => OpLabel::App,
            Phase::Bootstrap => OpLabel::Bootstrap,
        };
        let alg = opts.ks_policy.try_algorithm(n, node.level, word_bits)?;
        match lower_node(arch, n, &node.op, node.level, alg) {
            LoweredOp::None => {
                // Inputs/outputs/drops: still maintain use bookkeeping so
                // operand lifetimes stay correct. A ModDrop re-materializes
                // as a (free) new value: execute a zero-work op.
                let mut reads = Vec::new();
                for opnd in node.op.operands() {
                    let v = node_value(opnd);
                    reads.push((v, next_use_after(&value_uses, &mut use_cursor, v)));
                }
                let writes = match node.op {
                    HeOp::ModDrop(..) => vec![(node_value(id), first_use(&value_uses, node_value(id)))],
                    HeOp::Input | HeOp::PlainInput => vec![],
                    _ => vec![],
                };
                if !reads.is_empty() || !writes.is_empty() {
                    machine.exec(&cl_isa::MacroOp::new(), n, &reads, &writes, label);
                }
            }
            LoweredOp::One(op) => {
                let mut reads = Vec::new();
                for opnd in node.op.operands() {
                    let v = node_value(opnd);
                    reads.push((v, next_use_after(&value_uses, &mut use_cursor, v)));
                }
                if let Some(&ksh) = ksh_of_node.get(&id.0) {
                    reads.push((ksh, next_use_after(&value_uses, &mut use_cursor, ksh)));
                }
                let out = node_value(id);
                let writes = vec![(out, first_use(&value_uses, out))];
                machine.exec(&op, n, &reads, &writes, label);
            }
        }
    }
    // Self-check: every recorded use must have been consumed exactly once
    // (a mismatch desynchronizes next-use chains and corrupts residency).
    for (v, uses) in &value_uses {
        let consumed = use_cursor.get(v).copied().unwrap_or(0);
        debug_assert_eq!(
            consumed,
            uses.len(),
            "value {v:?}: {consumed} reads executed vs {} recorded",
            uses.len()
        );
    }
    Ok(machine.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_isa::FuKind;

    fn mul_chain(levels: usize, len: usize) -> HeGraph {
        let mut g = HeGraph::new();
        let mut x = g.input(levels);
        for _ in 0..len {
            let m = g.mul_ct(x, x);
            x = g.rescale(m);
        }
        g.output(x);
        g
    }

    #[test]
    fn mul_chain_runs_and_uses_resources() {
        let g = mul_chain(10, 8);
        let arch = ArchConfig::craterlake();
        let stats = compile_and_run(&g, &arch, &CompileOptions::paper_default());
        assert!(stats.cycles > 0.0);
        assert!(stats.fu_busy.get(&FuKind::Ntt).copied().unwrap_or(0.0) > 0.0);
        assert!(stats.fu_busy.get(&FuKind::Crb).copied().unwrap_or(0.0) > 0.0);
        // The relin hint at each level is fetched from memory.
        assert!(stats.traffic_of(TrafficClass::Ksh) > 0.0);
    }

    #[test]
    fn ksh_reuse_across_repeated_rotations() {
        // 20 rotations by the same amount at one level: the hint loads once.
        let mut g = HeGraph::new();
        let x = g.input(20);
        let mut acc = x;
        for _ in 0..20 {
            let r = g.rotate(acc, 3);
            acc = g.add(acc, r);
        }
        g.output(acc);
        let arch = ArchConfig::craterlake();
        let opts = CompileOptions::paper_default();
        let stats = compile_and_run(&g, &arch, &opts);
        // Seeded 1-digit hint at L=20: 1 * (20+20) * 65536 words * 3.5 B.
        let expect = 40.0 * 65536.0 * 3.5;
        assert!(
            (stats.traffic_of(TrafficClass::Ksh) - expect).abs() < 1.0,
            "KSH traffic {} vs {expect}",
            stats.traffic_of(TrafficClass::Ksh)
        );
    }

    #[test]
    fn kshgen_halves_hint_traffic() {
        let mut g = HeGraph::new();
        let x = g.input(30);
        let r = g.rotate(x, 1);
        g.output(r);
        let with_gen = compile_and_run(
            &g,
            &ArchConfig::craterlake(),
            &CompileOptions::paper_default(),
        );
        let without = compile_and_run(
            &g,
            &ArchConfig::craterlake().without_kshgen(),
            &CompileOptions::paper_default(),
        );
        let ratio = without.traffic_of(TrafficClass::Ksh) / with_gen.traffic_of(TrafficClass::Ksh);
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn deep_keyswitch_much_slower_without_crb() {
        // A reuse-heavy deep workload (same rotation hint applied many
        // times, as BSGS kernels do): compute-bound, so losing the CRB and
        // chaining exposes the O(L^2) multiply/add wall (Table 4 shows
        // 8.8x-34.5x on the deep benchmarks).
        let mut g = HeGraph::new();
        let x = g.input(57);
        let mut acc = x;
        for _ in 0..20 {
            let r = g.rotate(acc, 7);
            acc = g.add(acc, r);
        }
        g.output(acc);
        let opts = CompileOptions::paper_default();
        let with_crb = compile_and_run(&g, &ArchConfig::craterlake(), &opts);
        let without = compile_and_run(
            &g,
            &ArchConfig::craterlake().without_crb_chaining(),
            &opts,
        );
        let slowdown = without.cycles / with_crb.cycles;
        assert!(
            slowdown > 5.0,
            "CRB/chaining should be worth >5x on deep keyswitching, got {slowdown}"
        );
    }

    #[test]
    fn reordering_reduces_hint_traffic_under_pressure() {
        // Interleaved rotations by two amounts at a level where each hint
        // is ~34 MB: with a register file too small for both hints, the
        // A,B,A,B,... order reloads a hint per op; the reuse order groups
        // them so each hint loads once.
        let mut g = HeGraph::new();
        let mut outs = Vec::new();
        for i in 0..12 {
            let x = g.input(57);
            let amount = if i % 2 == 0 { 3 } else { 7 };
            outs.push(g.rotate(x, amount));
        }
        for o in outs {
            g.output(o);
        }
        // RF sized to hold the working set of one rotation but not two
        // hints plus operands.
        let arch = ArchConfig::craterlake().with_rf_bytes(100 << 20);
        let base_opts = CompileOptions::paper_default();
        let reordered_opts = CompileOptions {
            reorder: true,
            ..base_opts.clone()
        };
        let base = compile_and_run(&g, &arch, &base_opts);
        let reordered = compile_and_run(&g, &arch, &reordered_opts);
        assert!(
            reordered.traffic_of(TrafficClass::Ksh) < base.traffic_of(TrafficClass::Ksh),
            "reordering should reduce hint traffic: {} vs {}",
            reordered.traffic_of(TrafficClass::Ksh),
            base.traffic_of(TrafficClass::Ksh)
        );
    }

    #[test]
    fn policy_picks_more_digits_at_high_levels() {
        let p = KsPolicy::SecurityDriven(SecurityLevel::Bits80);
        let low = p.algorithm(1 << 16, 30, 28);
        let high = p.algorithm(1 << 16, 60, 28);
        assert_eq!(low, KsAlgorithm::Boosted(1));
        assert_eq!(high, KsAlgorithm::Boosted(2));
        let f1 = KsPolicy::BestPerLevel(SecurityLevel::Bits80);
        assert_eq!(f1.algorithm(1 << 16, 8, 28), KsAlgorithm::Standard);
        assert!(matches!(f1.algorithm(1 << 16, 40, 28), KsAlgorithm::Boosted(_)));
    }

    #[test]
    fn unreachable_security_point_is_a_typed_error_not_a_fallback() {
        // At 200-bit security / N = 64K / 28-bit limbs, the modulus budget
        // is ~41 limbs; level 57 is unreachable at ANY digit count. The old
        // code silently compiled it as Boosted(4).
        let p = KsPolicy::SecurityDriven(SecurityLevel::Bits200);
        let err = p.try_algorithm(1 << 16, 57, 28).unwrap_err();
        assert_eq!(
            err,
            CompileError::UnsatisfiableSecurity {
                n: 1 << 16,
                level: 57,
                word_bits: 28,
                security: SecurityLevel::Bits200,
            }
        );
        assert!(err.to_string().contains("level 57"));
        // BestPerLevel above the crossover propagates the same error...
        let f1 = KsPolicy::BestPerLevel(SecurityLevel::Bits200);
        assert!(f1.try_algorithm(1 << 16, 57, 28).is_err());
        // ...and the error surfaces from whole-graph compilation too.
        let mut g = HeGraph::new();
        let x = g.input(57);
        let m = g.mul_ct(x, x);
        g.output(m);
        let opts = CompileOptions {
            ks_policy: KsPolicy::SecurityDriven(SecurityLevel::Bits200),
            ..CompileOptions::paper_default()
        };
        let res = try_compile_and_run(&g, &ArchConfig::craterlake(), &opts);
        assert!(matches!(
            res,
            Err(CompileError::UnsatisfiableSecurity { level: 57, .. })
        ));
        // Reachable points still succeed unchanged.
        assert!(matches!(
            p.try_algorithm(1 << 16, 30, 28),
            Ok(KsAlgorithm::Boosted(_))
        ));
    }

    #[test]
    fn intermediate_spills_appear_under_capacity_pressure() {
        // Many big live values at L=57 on a small RF force spills.
        let mut g = HeGraph::new();
        let inputs: Vec<_> = (0..12).map(|_| g.input(57)).collect();
        let mut acc = inputs[0];
        // Touch all inputs twice with long reuse distances.
        for &i in &inputs[1..] {
            acc = g.add(acc, i);
        }
        for &i in &inputs[1..] {
            acc = g.add(acc, i);
        }
        g.output(acc);
        let small_rf = ArchConfig::craterlake().with_rf_bytes(64 << 20);
        let stats = compile_and_run(&g, &small_rf, &CompileOptions::paper_default());
        assert!(stats.evictions > 0, "expected capacity pressure");
    }
}
