//! The CraterLake compiler (Sec. 6).
//!
//! Translates an [`cl_isa::HeGraph`] into macro-operations and drives the
//! machine model:
//!
//! 1. **Keyswitch policy** ([`KsPolicy`]): picks the keyswitching variant
//!    per level (Sec. 3.1 — e.g. 2-digit above `L = 52` and 1-digit below
//!    for 80-bit security at `N = 64K`; the per-level best algorithm for
//!    F1+, which includes standard keyswitching below the `L ≈ 14`
//!    crossover).
//! 2. **Lowering** ([`lower_node`]): each homomorphic operation becomes one (or
//!    a few) [`cl_isa::MacroOp`]s whose FU passes, register-file words and
//!    network words reflect the target architecture — fused multi-FU
//!    keyswitch pipelines with vector chaining on CraterLake (Sec. 5.4),
//!    discrete multiply/adds through the register file when no CRB exists,
//!    crossbar redistribution traffic for residue-polynomial tiling.
//! 3. **Scheduling**: operations execute in graph order against the
//!    machine's resource timelines; operand residency uses Belady's MIN with
//!    next-use chains computed in a first pass, and loads are decoupled
//!    (prefetched) as in the paper's greedy load scheduler.
//! 4. **Execution lowering** ([`lower_to_program`]): compiles a graph into
//!    a runnable `cl-runtime` [`cl_runtime::Program`] — rotation
//!    canonicalization and deduplication, hoisted rotation batches,
//!    `MulPlain`+`Rescale` fusion, free-at-last-use slot residency, and
//!    optional noise-tracked bootstrap insertion — while
//!    [`predict_program`] computes the exact instrumented op counts the
//!    run will report, making the cost model a tested invariant.

#![warn(missing_docs)]

mod lower;
mod predict;
mod program_lower;
mod reorder;
mod schedule;

pub use lower::{keyswitch_macro_ops, lower_node, CHAINING_RF_FACTOR};
pub use predict::{predict_program, PredictError};
pub use program_lower::{
    lower_to_program, AutoBootstrap, LowerError, LowerOptions, LoweredProgram, ScheduleCounts,
};
pub use reorder::reuse_order;
pub use schedule::{
    compile_and_run, try_compile_and_run, CompileError, CompileOptions, KsPolicy,
};
