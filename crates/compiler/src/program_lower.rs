//! Lowering [`HeGraph`]s to executable [`Program`]s (compiler → runtime).
//!
//! [`lower_to_program`] compiles a dataflow graph of homomorphic operations
//! into the pipeline executor's accumulator/slot form:
//!
//! 1. **Canonicalization**: rotation steps are reduced with
//!    [`cl_math::canonical_rotation_step`]; step-0 rotations alias their
//!    source, congruent rotations of the same value are deduplicated, and a
//!    `MulPlain` whose sole consumer is a `Rescale` fuses into one
//!    `MulPlainRescale`.
//! 2. **Hoisting**: two or more distinct rotations of one value become a
//!    single [`PipelineOp::RotateHoisted`] batch, so the executor decomposes
//!    the source once (`try_rotate_hoisted_many`) instead of once per step.
//!    With [`LowerOptions::reorder`] the emission order first runs
//!    [`crate::reuse_order`], which groups rotations sharing a hint.
//! 3. **Codegen**: values move through the executor's single accumulator and
//!    named slots. A live accumulator value is parked (`Store`) before being
//!    overwritten, operands are fetched with `Load`/`Input`, and every slot
//!    is released (`Free`) at its value's last use — Belady's "farthest
//!    next use" collapses to free-at-last-use here because the schedule is
//!    fixed, which makes the residency plan optimal for that order. The
//!    resulting live-ciphertext high-water mark is reported as
//!    [`LoweredProgram::predicted_peak_live`] and can be bounded with
//!    [`LowerOptions::max_live_cts`].
//! 4. **Auto-bootstrap** (opt-in): for linear slot-free programs, a tracked
//!    noise estimate — the planner-grade sibling of the runtime's
//!    `AutoRescale` guardrail — inserts [`PipelineOp::Bootstrap`] before a
//!    multiply whose rescale would land below the configured budget.

use std::collections::{BTreeMap, HashMap};

use cl_isa::{HeGraph, HeOp, NodeId};
use cl_math::canonical_rotation_step;
use cl_runtime::{PipelineOp, Program};

/// Why a graph could not be lowered to a runnable [`Program`].
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// The graph uses an op the pipeline executor cannot run (`ModRaise`
    /// outside a bootstrap sequence, or a raise-style level change).
    Unsupported {
        /// Offending node.
        node: u32,
        /// Human-readable description of the unsupported construct.
        what: &'static str,
    },
    /// The graph must mark exactly one value as its output.
    OutputCount {
        /// Number of `Output` nodes found.
        found: usize,
    },
    /// An `AddPlain`/`MulPlain` consumes a `PlainInput` with no plaintext
    /// vector bound in [`LowerOptions::plain`].
    MissingPlainValues {
        /// The unbound `PlainInput` node.
        node: u32,
    },
    /// A plain op's operand is not a `PlainInput` node (or a ct op's
    /// operand is one). The graph type permits this; the executor does not.
    NotAPlainInput {
        /// Offending node.
        node: u32,
    },
    /// Auto-bootstrap was requested but the graph is not a linear chain:
    /// it needs value slots, and the functional bootstrapper only tracks
    /// the accumulator.
    AutoBootstrapNeedsLinearChain {
        /// First op that required a slot.
        op: &'static str,
    },
    /// The tracked noise estimate demands a bootstrap, but the configured
    /// exit level would not raise the ciphertext (exit ≤ current level).
    NoiseBudgetExhausted {
        /// Level at which the budget ran out.
        level: usize,
    },
    /// The residency plan's predicted live-ciphertext peak exceeds
    /// [`LowerOptions::max_live_cts`].
    ResidencyExceeded {
        /// Predicted high-water mark of live ciphertexts.
        predicted: u64,
        /// The configured bound.
        bound: u64,
    },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::Unsupported { node, what } => {
                write!(f, "node {node}: {what} cannot be lowered to a pipeline op")
            }
            LowerError::OutputCount { found } => {
                write!(f, "graph must have exactly one Output node, found {found}")
            }
            LowerError::MissingPlainValues { node } => {
                write!(f, "no plaintext vector bound for PlainInput node {node}")
            }
            LowerError::NotAPlainInput { node } => {
                write!(f, "node {node}: plain operand is not a PlainInput node")
            }
            LowerError::AutoBootstrapNeedsLinearChain { op } => write!(
                f,
                "auto-bootstrap requires a linear (slot-free) program, but lowering emitted {op}"
            ),
            LowerError::NoiseBudgetExhausted { level } => write!(
                f,
                "noise budget exhausted at level {level} and the bootstrap exit level \
                 would not raise the ciphertext"
            ),
            LowerError::ResidencyExceeded { predicted, bound } => write!(
                f,
                "residency plan predicts {predicted} live ciphertexts, above the bound {bound}"
            ),
        }
    }
}

impl std::error::Error for LowerError {}

/// Planner-grade noise model driving automatic bootstrap insertion — the
/// static sibling of the runtime's `AutoRescale` guardrail. Levels and
/// noise-bit estimates are tracked through the lowered chain; a bootstrap
/// is inserted before any multiply whose rescale would leave less than
/// `min_budget_bits` of headroom (or would drop below level 2, where no
/// rescaling modulus remains).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoBootstrap {
    /// RNS limb width in bits (one rescale spends one limb).
    pub limb_bits: u32,
    /// Log2 of the encoding scale.
    pub scale_bits: u32,
    /// Noise estimate (bits) of a fresh or freshly bootstrapped ciphertext.
    pub fresh_noise_bits: f64,
    /// Minimum post-rescale headroom (bits) before a bootstrap is forced.
    pub min_budget_bits: f64,
    /// Level a bootstrap restores the ciphertext to.
    pub exit_level: usize,
}

impl AutoBootstrap {
    /// Headroom (bits) of a ciphertext at `level` with `noise` noise bits:
    /// modulus bits minus the encoded value's scale minus the noise.
    fn headroom(&self, level: usize, noise: f64) -> f64 {
        level as f64 * f64::from(self.limb_bits) - f64::from(self.scale_bits) - noise
    }
}

/// Options controlling [`lower_to_program`].
#[derive(Debug, Clone, Default)]
pub struct LowerOptions {
    /// Slot count of the target context (`params().slots()`): rotation
    /// steps are canonicalized modulo this before deduplication/hoisting.
    pub slots: usize,
    /// Plaintext vectors for the graph's `PlainInput` nodes. Only nodes
    /// consumed by `AddPlain`/`MulPlain` need a binding.
    pub plain: BTreeMap<NodeId, Vec<f64>>,
    /// Run [`crate::reuse_order`] first so rotations sharing a hint become
    /// adjacent (bigger hoisting batches on interleaved graphs).
    pub reorder: bool,
    /// When set, insert [`PipelineOp::Bootstrap`] automatically from the
    /// tracked noise estimate. Only valid for linear slot-free chains.
    pub auto_bootstrap: Option<AutoBootstrap>,
    /// Upper bound on the residency plan's live-ciphertext high-water mark;
    /// lowering fails with [`LowerError::ResidencyExceeded`] beyond it.
    pub max_live_cts: Option<u64>,
}

/// Op counts of a lowered program at the schedule level — the quantities
/// the compiler *promises*, checked against `cl-trace` measurements by the
/// end-to-end tests (one `rotations` unit per hoisted step).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleCounts {
    /// Homomorphic rotations and conjugations (hoisted steps counted
    /// individually).
    pub rotations: u64,
    /// Ciphertext-ciphertext multiplies (including squares).
    pub ct_mults: u64,
    /// Plaintext multiplies (fused or not).
    pub pt_mults: u64,
    /// Bootstraps (explicit plus auto-inserted).
    pub bootstraps: u64,
}

/// A compiled graph: the executable program plus the schedule's promises
/// about it.
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    /// The runnable pipeline program.
    pub program: Program,
    /// Live-ciphertext high-water mark the residency plan predicts —
    /// replayed with the executor's own accounting (live slots + the
    /// accumulator), so it must equal the measured
    /// `RecoveryTelemetry::peak_live_cts` exactly.
    pub predicted_peak_live: u64,
    /// Distinct canonical rotation steps the program needs keys for.
    pub rotation_steps: Vec<i64>,
    /// Whether the program conjugates (needs the conjugation key).
    pub needs_conjugation: bool,
    /// Graph `Input` nodes in pipeline-input order: the caller binds
    /// ciphertexts to `run_graph` in exactly this order.
    pub input_nodes: Vec<NodeId>,
    /// Schedule-level op counts of the emitted program.
    pub counts: ScheduleCounts,
}

/// What a single emission step computes, with operands resolved through
/// the alias map (dedup/fusion already applied).
enum Emit {
    /// `AddPlain`: accumulator + encoded vector.
    AddPlain { node: NodeId, src: NodeId, plain: NodeId },
    /// `MulPlain`, optionally fused with its sole-consumer `Rescale`.
    MulPlain { node: NodeId, src: NodeId, plain: NodeId, fused_rescale: bool },
    /// Bare `Rescale`.
    Rescale { node: NodeId, src: NodeId },
    /// Explicit level drop.
    ModDrop { node: NodeId, src: NodeId, target: usize },
    /// `MulCt(a, a)`.
    Square { node: NodeId, src: NodeId },
    /// `Add`/`Sub`/`MulCt` with distinct operands.
    Bin { node: NodeId, a: NodeId, b: NodeId, kind: BinKind },
    /// Singleton rotation.
    Rotate { node: NodeId, src: NodeId, step: i64 },
    /// Conjugation.
    Conjugate { node: NodeId, src: NodeId },
    /// Hoisted rotation batch: `members[k]` is `(result node, step)`.
    Hoist { src: NodeId, members: Vec<(NodeId, i64)> },
}

#[derive(Clone, Copy, PartialEq)]
enum BinKind {
    Add,
    Sub,
    MulCt,
}

/// Compiles `graph` into an executable [`Program`].
///
/// The graph must have exactly one `Output` node; its value ends up in the
/// executor's accumulator (the return value of `run_graph`). Encrypted
/// inputs are bound positionally in [`LoweredProgram::input_nodes`] order.
///
/// # Errors
///
/// See [`LowerError`]: unsupported ops (`ModRaise`), missing plaintext
/// bindings, a non-linear graph under auto-bootstrap, an exhausted noise
/// budget, or a residency bound violation.
///
/// # Panics
///
/// Panics if `graph.validate()` would (malformed graphs are generator
/// bugs, not inputs).
pub fn lower_to_program(graph: &HeGraph, opts: &LowerOptions) -> Result<LoweredProgram, LowerError> {
    graph.validate();
    let order: Vec<NodeId> = if opts.reorder {
        crate::reuse_order(graph)
    } else {
        graph.iter().map(|(id, _)| id).collect()
    };

    // --- output / input discovery -------------------------------------
    let outputs: Vec<NodeId> = graph
        .iter()
        .filter_map(|(_, n)| match n.op {
            HeOp::Output(a) => Some(a),
            _ => None,
        })
        .collect();
    if outputs.len() != 1 {
        return Err(LowerError::OutputCount { found: outputs.len() });
    }
    let input_nodes: Vec<NodeId> = graph
        .iter()
        .filter_map(|(id, n)| matches!(n.op, HeOp::Input).then_some(id))
        .collect();
    let input_index: HashMap<NodeId, u16> = input_nodes
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i as u16))
        .collect();

    // --- consumer counts (raw graph) for MulPlain+Rescale fusion ------
    let n_nodes = graph.num_nodes();
    let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); n_nodes];
    for (id, node) in graph.iter() {
        for o in node.op.operands() {
            consumers[o.0 as usize].push(id);
        }
    }
    let fused_into: HashMap<NodeId, NodeId> = graph
        .iter()
        .filter_map(|(id, n)| match n.op {
            HeOp::Rescale(a) if matches!(graph.node(a).op, HeOp::MulPlain(..)) => {
                (consumers[a.0 as usize].len() == 1).then_some((id, a))
            }
            _ => None,
        })
        .collect();

    // --- alias + rotation analysis (single pass in emission order) ----
    // alias[v] = the node whose emission produces v's value, when v itself
    // emits nothing (step-0 / duplicate rotations, fused rescales).
    let mut alias: HashMap<NodeId, NodeId> = HashMap::new();
    let resolve = |alias: &HashMap<NodeId, NodeId>, mut v: NodeId| -> NodeId {
        while let Some(&a) = alias.get(&v) {
            v = a;
        }
        v
    };
    // Distinct canonical rotations per source, in emission order.
    let mut rot_groups: HashMap<NodeId, Vec<(NodeId, i64)>> = HashMap::new();
    let mut rot_group_order: Vec<NodeId> = Vec::new(); // sources, first-seen order
    let mut rot_rep: HashMap<(NodeId, i64), NodeId> = HashMap::new();
    for &id in &order {
        match graph.node(id).op {
            HeOp::Rotate(a, s) => {
                if opts.slots == 0 {
                    return Err(LowerError::Unsupported {
                        node: id.0,
                        what: "rotation with LowerOptions::slots = 0",
                    });
                }
                let src = resolve(&alias, a);
                let step = canonical_rotation_step(s, opts.slots);
                if step == 0 {
                    alias.insert(id, src);
                } else if let Some(&rep) = rot_rep.get(&(src, step)) {
                    alias.insert(id, rep);
                } else {
                    rot_rep.insert((src, step), id);
                    if !rot_groups.contains_key(&src) {
                        rot_group_order.push(src);
                    }
                    rot_groups.entry(src).or_default().push((id, step));
                }
            }
            HeOp::Rescale(_) => {
                if let Some(&m) = fused_into.get(&id) {
                    // The MulPlainRescale emitted at `m` produces this value.
                    alias.insert(id, m);
                }
            }
            _ => {}
        }
    }

    // --- build the emission plan --------------------------------------
    let mut plan: Vec<Emit> = Vec::new();
    let check_plain = |p: NodeId| -> Result<NodeId, LowerError> {
        if !matches!(graph.node(p).op, HeOp::PlainInput) {
            return Err(LowerError::NotAPlainInput { node: p.0 });
        }
        if !opts.plain.contains_key(&p) {
            return Err(LowerError::MissingPlainValues { node: p.0 });
        }
        Ok(p)
    };
    for &id in &order {
        match graph.node(id).op {
            HeOp::Input | HeOp::PlainInput | HeOp::Output(_) => {}
            HeOp::Add(a, b) | HeOp::Sub(a, b) | HeOp::MulCt(a, b) => {
                let (ra, rb) = (resolve(&alias, a), resolve(&alias, b));
                let kind = match graph.node(id).op {
                    HeOp::Add(..) => BinKind::Add,
                    HeOp::Sub(..) => BinKind::Sub,
                    _ => BinKind::MulCt,
                };
                if ra == rb && kind == BinKind::MulCt {
                    plan.push(Emit::Square { node: id, src: ra });
                } else {
                    plan.push(Emit::Bin { node: id, a: ra, b: rb, kind });
                }
            }
            HeOp::AddPlain(a, p) => plan.push(Emit::AddPlain {
                node: id,
                src: resolve(&alias, a),
                plain: check_plain(p)?,
            }),
            HeOp::MulPlain(a, p) => plan.push(Emit::MulPlain {
                node: id,
                src: resolve(&alias, a),
                plain: check_plain(p)?,
                fused_rescale: fused_into.values().any(|&m| m == id),
            }),
            HeOp::Rescale(a) => {
                if !alias.contains_key(&id) {
                    plan.push(Emit::Rescale { node: id, src: resolve(&alias, a) });
                }
            }
            HeOp::ModDrop(a, l) => plan.push(Emit::ModDrop {
                node: id,
                src: resolve(&alias, a),
                target: l,
            }),
            HeOp::ModRaise(..) => {
                return Err(LowerError::Unsupported {
                    node: id.0,
                    what: "ModRaise (bootstrap interiors are the runtime's job)",
                })
            }
            HeOp::Conjugate(a) => plan.push(Emit::Conjugate { node: id, src: resolve(&alias, a) }),
            HeOp::Rotate(..) => {
                if alias.contains_key(&id) {
                    continue; // step-0 or duplicate
                }
                // Emit the whole group at its first member's position.
                let Some(pos) = rot_group_order.iter().position(|src| {
                    rot_groups.get(src).is_some_and(|g| g.first().is_some_and(|&(m, _)| m == id))
                }) else {
                    continue; // non-first member: emitted with its group
                };
                let src = rot_group_order[pos];
                let members = rot_groups
                    .get(&src)
                    .cloned()
                    .unwrap_or_default();
                if members.len() == 1 {
                    plan.push(Emit::Rotate { node: id, src, step: members[0].1 });
                } else {
                    plan.push(Emit::Hoist { src, members });
                }
            }
        }
    }

    // --- use counts over the plan (multiplicity matters: Add(v, v) = 2) -
    let mut uses: HashMap<NodeId, usize> = HashMap::new();
    for e in &plan {
        match e {
            Emit::AddPlain { src, .. }
            | Emit::MulPlain { src, .. }
            | Emit::Rescale { src, .. }
            | Emit::ModDrop { src, .. }
            | Emit::Square { src, .. }
            | Emit::Rotate { src, .. }
            | Emit::Conjugate { src, .. }
            | Emit::Hoist { src, .. } => *uses.entry(*src).or_default() += 1,
            Emit::Bin { a, b, .. } => {
                *uses.entry(*a).or_default() += 1;
                *uses.entry(*b).or_default() += 1;
            }
        }
    }
    let result = resolve(&alias, outputs[0]);
    *uses.entry(result).or_default() += 1;

    // --- codegen -------------------------------------------------------
    let mut cg = Codegen {
        graph,
        input_index: &input_index,
        uses,
        ops: Vec::new(),
        cur: None,
        slot_of: HashMap::new(),
        free_ids: Vec::new(),
        next_id: 0,
        boot: opts.auto_bootstrap,
        level: None,
        noise: 0.0,
    };
    for e in &plan {
        cg.emit(e, opts)?;
    }
    // Land the result in the accumulator, then release anything left.
    cg.ensure_in_acc(result)?;
    cg.did_read(result);
    let leftover: Vec<u16> = cg.slot_of.values().copied().collect();
    for s in leftover {
        cg.ops.push(PipelineOp::Free(s));
    }
    cg.slot_of.clear();

    // --- residency replay (the executor's own accounting) --------------
    let mut live: std::collections::BTreeSet<u16> = std::collections::BTreeSet::new();
    let mut peak: u64 = 1; // note_live at program start: empty slots + acc
    for op in &cg.ops {
        match op {
            PipelineOp::Store(s) => {
                live.insert(*s);
            }
            PipelineOp::Free(s) => {
                live.remove(s);
            }
            PipelineOp::RotateHoisted { dsts, .. } => {
                live.extend(dsts.iter().copied());
            }
            _ => {}
        }
        peak = peak.max(live.len() as u64 + 1);
    }
    if let Some(bound) = opts.max_live_cts {
        if peak > bound {
            return Err(LowerError::ResidencyExceeded { predicted: peak, bound });
        }
    }

    // --- schedule-level counts -----------------------------------------
    let mut counts = ScheduleCounts::default();
    let mut rotation_steps: Vec<i64> = Vec::new();
    let mut needs_conjugation = false;
    for op in &cg.ops {
        match op {
            PipelineOp::Rotate(s) => {
                counts.rotations += 1;
                if !rotation_steps.contains(s) {
                    rotation_steps.push(*s);
                }
            }
            PipelineOp::RotateHoisted { steps, .. } => {
                counts.rotations += steps.len() as u64;
                for s in steps {
                    if !rotation_steps.contains(s) {
                        rotation_steps.push(*s);
                    }
                }
            }
            PipelineOp::Conjugate => {
                counts.rotations += 1;
                needs_conjugation = true;
            }
            PipelineOp::Square | PipelineOp::MulCtSlot(_) => counts.ct_mults += 1,
            PipelineOp::MulPlain(_) | PipelineOp::MulPlainRescale(_) => counts.pt_mults += 1,
            PipelineOp::Bootstrap => counts.bootstraps += 1,
            _ => {}
        }
    }

    Ok(LoweredProgram {
        program: Program::from_ops(cg.ops),
        predicted_peak_live: peak,
        rotation_steps,
        needs_conjugation,
        input_nodes,
        counts,
    })
}

/// Accumulator/slot state machine for codegen.
struct Codegen<'g> {
    graph: &'g HeGraph,
    input_index: &'g HashMap<NodeId, u16>,
    /// Remaining reads of each value in the plan (including the output).
    uses: HashMap<NodeId, usize>,
    ops: Vec<PipelineOp>,
    /// Which value the accumulator holds.
    cur: Option<NodeId>,
    /// Which slot holds each live slotted value.
    slot_of: HashMap<NodeId, u16>,
    /// Released slot ids, reused smallest-first.
    free_ids: Vec<u16>,
    next_id: u16,
    // Auto-bootstrap noise tracking (linear chains only).
    boot: Option<AutoBootstrap>,
    level: Option<usize>,
    noise: f64,
}

impl Codegen<'_> {
    fn alloc_slot(&mut self) -> u16 {
        if let Some(pos) = (0..self.free_ids.len()).min_by_key(|&i| self.free_ids[i]) {
            return self.free_ids.swap_remove(pos);
        }
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// A slot op under auto-bootstrap means the chain is not linear.
    fn slot_op(&mut self, op: PipelineOp) -> Result<(), LowerError> {
        if self.boot.is_some() {
            return Err(LowerError::AutoBootstrapNeedsLinearChain { op: op.name() });
        }
        self.ops.push(op);
        Ok(())
    }

    /// Parks the accumulator value into a slot if it is still needed and
    /// has no copy there yet.
    fn park_cur(&mut self) -> Result<(), LowerError> {
        if let Some(w) = self.cur {
            if self.uses.get(&w).copied().unwrap_or(0) > 0 && !self.slot_of.contains_key(&w) {
                let s = self.alloc_slot();
                self.slot_op(PipelineOp::Store(s))?;
                self.slot_of.insert(w, s);
            }
        }
        Ok(())
    }

    /// Materializes `v` into the accumulator.
    fn ensure_in_acc(&mut self, v: NodeId) -> Result<(), LowerError> {
        if self.cur == Some(v) {
            return Ok(());
        }
        self.park_cur()?;
        if let Some(&s) = self.slot_of.get(&v) {
            self.slot_op(PipelineOp::Load(s))?;
        } else if let Some(&i) = self.input_index.get(&v) {
            if i == 0 && self.cur.is_none() {
                // run_graph starts with the accumulator = inputs[0].
            } else {
                self.slot_op(PipelineOp::Input(i))?;
            }
            if let Some(b) = self.boot {
                // Fresh input: seed the noise tracker.
                self.level = Some(self.graph.node(v).level);
                self.noise = b.fresh_noise_bits;
            }
        } else {
            unreachable!("value {v:?} was consumed without being parked");
        }
        self.cur = Some(v);
        Ok(())
    }

    /// Materializes `v` into a slot (for use as a binary op's rhs).
    fn ensure_in_slot(&mut self, v: NodeId) -> Result<u16, LowerError> {
        if let Some(&s) = self.slot_of.get(&v) {
            return Ok(s);
        }
        if self.cur != Some(v) {
            // Not in the accumulator either: must be an input.
            self.ensure_in_acc(v)?;
        }
        let s = self.alloc_slot();
        self.slot_op(PipelineOp::Store(s))?;
        self.slot_of.insert(v, s);
        Ok(s)
    }

    /// Parks the accumulator value before an op transforms it in place,
    /// when reads beyond the current one remain and no slot copy exists.
    fn park_if_reused(&mut self, v: NodeId) -> Result<(), LowerError> {
        if self.uses.get(&v).copied().unwrap_or(0) > 1 && !self.slot_of.contains_key(&v) {
            let s = self.alloc_slot();
            self.slot_op(PipelineOp::Store(s))?;
            self.slot_of.insert(v, s);
        }
        Ok(())
    }

    /// Consumes one read of `v`; frees its slot at the last use.
    fn did_read(&mut self, v: NodeId) {
        if let Some(u) = self.uses.get_mut(&v) {
            *u = u.saturating_sub(1);
            if *u == 0 {
                if let Some(s) = self.slot_of.remove(&v) {
                    self.ops.push(PipelineOp::Free(s));
                    self.free_ids.push(s);
                }
            }
        }
    }

    /// Under auto-bootstrap: insert a bootstrap before a multiply whose
    /// eventual rescale would exhaust the budget (fused muls rescale
    /// immediately; bare `Rescale` ops apply the drop in
    /// [`Codegen::after_rescale`]).
    fn maybe_bootstrap_before_mul(&mut self) -> Result<(), LowerError> {
        let Some(b) = self.boot else { return Ok(()) };
        let level = self.level.unwrap_or(b.exit_level);
        let needs = if level < 2 {
            true
        } else {
            let noise_after = (self.noise + f64::from(b.scale_bits) - f64::from(b.limb_bits))
                .max(4.0);
            b.headroom(level - 1, noise_after) < b.min_budget_bits
        };
        if needs {
            if b.exit_level <= level {
                return Err(LowerError::NoiseBudgetExhausted { level });
            }
            self.ops.push(PipelineOp::Bootstrap);
            self.level = Some(b.exit_level);
            self.noise = b.fresh_noise_bits;
        }
        // The multiply itself grows the noise by roughly the plaintext's
        // magnitude (the scale).
        self.noise += f64::from(b.scale_bits);
        Ok(())
    }

    fn after_rescale(&mut self) {
        if let Some(b) = self.boot {
            if let Some(l) = self.level {
                self.level = Some(l.saturating_sub(1));
            }
            self.noise = (self.noise - f64::from(b.limb_bits)).max(4.0);
        }
    }

    fn plain_values(&self, opts: &LowerOptions, p: NodeId) -> Vec<f64> {
        opts.plain.get(&p).cloned().unwrap_or_default()
    }

    fn emit(&mut self, e: &Emit, opts: &LowerOptions) -> Result<(), LowerError> {
        match e {
            Emit::AddPlain { node, src, plain } => {
                self.ensure_in_acc(*src)?;
                self.park_if_reused(*src)?;
                self.ops.push(PipelineOp::AddPlain(self.plain_values(opts, *plain)));
                self.cur = Some(*node);
                self.did_read(*src);
                if self.boot.is_some() {
                    self.noise += 0.1;
                }
            }
            Emit::MulPlain { node, src, plain, fused_rescale } => {
                self.ensure_in_acc(*src)?;
                self.park_if_reused(*src)?;
                self.maybe_bootstrap_before_mul()?;
                let vals = self.plain_values(opts, *plain);
                if *fused_rescale {
                    self.ops.push(PipelineOp::MulPlainRescale(vals));
                    self.after_rescale();
                } else {
                    self.ops.push(PipelineOp::MulPlain(vals));
                }
                self.cur = Some(*node);
                self.did_read(*src);
            }
            Emit::Rescale { node, src } => {
                self.ensure_in_acc(*src)?;
                self.park_if_reused(*src)?;
                self.ops.push(PipelineOp::Rescale);
                self.after_rescale();
                self.cur = Some(*node);
                self.did_read(*src);
            }
            Emit::ModDrop { node, src, target } => {
                self.ensure_in_acc(*src)?;
                self.park_if_reused(*src)?;
                self.ops.push(PipelineOp::ModDropTo(*target as u32));
                if self.boot.is_some() {
                    self.level = Some(*target);
                }
                self.cur = Some(*node);
                self.did_read(*src);
            }
            Emit::Square { node, src } => {
                self.ensure_in_acc(*src)?;
                self.park_if_reused(*src)?;
                self.maybe_bootstrap_before_mul()?;
                self.ops.push(PipelineOp::Square);
                self.cur = Some(*node);
                self.did_read(*src);
            }
            Emit::Bin { node, a, b, kind } => {
                // Pick the accumulator operand: Sub needs `a`; the
                // commutative ops keep whichever is already resident.
                let (acc_v, slot_v) = match kind {
                    BinKind::Sub => (*a, *b),
                    _ if self.cur == Some(*b) && self.cur != Some(*a) => (*b, *a),
                    _ => (*a, *b),
                };
                let s = self.ensure_in_slot(slot_v)?;
                self.ensure_in_acc(acc_v)?;
                self.park_if_reused(acc_v)?;
                match kind {
                    BinKind::Add => self.slot_op(PipelineOp::AddSlot(s))?,
                    BinKind::Sub => self.slot_op(PipelineOp::SubSlot(s))?,
                    BinKind::MulCt => self.slot_op(PipelineOp::MulCtSlot(s))?,
                }
                self.cur = Some(*node);
                self.did_read(*a);
                self.did_read(*b);
            }
            Emit::Rotate { node, src, step } => {
                self.ensure_in_acc(*src)?;
                self.park_if_reused(*src)?;
                self.ops.push(PipelineOp::Rotate(*step));
                self.cur = Some(*node);
                self.did_read(*src);
                if self.boot.is_some() {
                    self.noise += 0.5;
                }
            }
            Emit::Conjugate { node, src } => {
                self.ensure_in_acc(*src)?;
                self.park_if_reused(*src)?;
                self.ops.push(PipelineOp::Conjugate);
                self.cur = Some(*node);
                self.did_read(*src);
                if self.boot.is_some() {
                    self.noise += 0.5;
                }
            }
            Emit::Hoist { src, members } => {
                self.ensure_in_acc(*src)?;
                let steps: Vec<i64> = members.iter().map(|&(_, s)| s).collect();
                let mut dsts = Vec::with_capacity(members.len());
                for &(m, _) in members {
                    let d = self.alloc_slot();
                    self.slot_of.insert(m, d);
                    dsts.push(d);
                }
                self.slot_op(PipelineOp::RotateHoisted { steps, dsts })?;
                // The accumulator still holds the source.
                self.did_read(*src);
                // A member the rest of the plan never reads is dead on
                // arrival — release it immediately.
                let dead: Vec<NodeId> = members
                    .iter()
                    .filter(|&&(m, _)| self.uses.get(&m).copied().unwrap_or(0) == 0)
                    .map(|&(m, _)| m)
                    .collect();
                for m in dead {
                    if let Some(s) = self.slot_of.remove(&m) {
                        self.ops.push(PipelineOp::Free(s));
                        self.free_ids.push(s);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(slots: usize) -> LowerOptions {
        LowerOptions {
            slots,
            ..LowerOptions::default()
        }
    }

    #[test]
    fn linear_chain_lowers_without_slots() {
        let mut g = HeGraph::new();
        let x = g.input(3);
        let s = g.mul_ct(x, x); // square
        let r = g.rescale(s);
        let rot = g.rotate(r, 5);
        g.output(rot);
        let lp = lower_to_program(&g, &opts(32)).unwrap();
        let ops = lp.program.ops();
        assert!(matches!(ops[0], PipelineOp::Square));
        assert!(matches!(ops[1], PipelineOp::Rescale));
        assert!(matches!(ops[2], PipelineOp::Rotate(5)));
        assert_eq!(ops.len(), 3);
        assert_eq!(lp.predicted_peak_live, 1);
        assert_eq!(lp.counts.ct_mults, 1);
        assert_eq!(lp.counts.rotations, 1);
        assert_eq!(lp.rotation_steps, vec![5]);
        assert_eq!(lp.input_nodes, vec![x]);
    }

    #[test]
    fn congruent_and_zero_rotations_collapse() {
        // rotate by slots ≡ 0 (aliases the source); -31 ≡ 1 (mod 32)
        // deduplicates against an explicit rotate-by-1.
        let mut g = HeGraph::new();
        let x = g.input(3);
        let r0 = g.rotate(x, 32);
        let r1 = g.rotate(x, 1);
        let r2 = g.rotate(x, -31);
        let a = g.add(r0, r1);
        let b = g.add(a, r2);
        g.output(b);
        let lp = lower_to_program(&g, &opts(32)).unwrap();
        assert_eq!(lp.counts.rotations, 1, "{:?}", lp.program.ops());
        assert_eq!(lp.rotation_steps, vec![1]);
    }

    #[test]
    fn distinct_rotations_of_one_source_hoist() {
        let mut g = HeGraph::new();
        let x = g.input(3);
        let r1 = g.rotate(x, 1);
        let r2 = g.rotate(x, 2);
        let r3 = g.rotate(x, 3);
        let a = g.add(r1, r2);
        let b = g.add(a, r3);
        g.output(b);
        let lp = lower_to_program(&g, &opts(32)).unwrap();
        let hoists: Vec<_> = lp
            .program
            .ops()
            .iter()
            .filter_map(|op| match op {
                PipelineOp::RotateHoisted { steps, .. } => Some(steps.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(hoists, vec![vec![1, 2, 3]]);
        assert_eq!(lp.counts.rotations, 3);
        // Source + 3 rotation results live at once, accumulator included.
        assert_eq!(lp.predicted_peak_live, 4);
        // Every stored slot is freed by program end.
        let stores = lp
            .program
            .ops()
            .iter()
            .filter(|op| matches!(op, PipelineOp::Store(_)))
            .count();
        let frees = lp
            .program
            .ops()
            .iter()
            .filter(|op| matches!(op, PipelineOp::Free(_)))
            .count();
        assert_eq!(frees, stores + 3, "hoisted dsts also freed");
    }

    #[test]
    fn mul_plain_fuses_with_sole_consumer_rescale() {
        let mut g = HeGraph::new();
        let x = g.input(3);
        let w = g.plain_input(3);
        let m = g.mul_plain(x, w);
        let r = g.rescale(m);
        g.output(r);
        let mut o = opts(32);
        o.plain.insert(w, vec![2.0; 32]);
        let lp = lower_to_program(&g, &o).unwrap();
        assert_eq!(lp.program.len(), 1);
        assert!(matches!(lp.program.ops()[0], PipelineOp::MulPlainRescale(_)));
        assert_eq!(lp.counts.pt_mults, 1);
    }

    #[test]
    fn mul_plain_with_second_consumer_does_not_fuse() {
        let mut g = HeGraph::new();
        let x = g.input(3);
        let w = g.plain_input(3);
        let m = g.mul_plain(x, w);
        let _r = g.rescale(m);
        let s = g.add(m, x); // second consumer of the unrescaled product
        g.output(s);
        let mut o = opts(32);
        o.plain.insert(w, vec![2.0; 32]);
        let lp = lower_to_program(&g, &o).unwrap();
        assert!(lp.program.ops().iter().any(|op| matches!(op, PipelineOp::MulPlain(_))));
        assert!(lp.program.ops().iter().any(|op| matches!(op, PipelineOp::Rescale)));
    }

    #[test]
    fn sub_keeps_operand_order() {
        let mut g = HeGraph::new();
        let a = g.input(3);
        let b = g.input(3);
        let d = g.sub(a, b);
        g.output(d);
        let lp = lower_to_program(&g, &opts(32)).unwrap();
        assert_eq!(
            lp.program.ops(),
            &[
                PipelineOp::Input(1),
                PipelineOp::Store(0),
                PipelineOp::Input(0),
                PipelineOp::SubSlot(0),
                PipelineOp::Free(0),
            ]
        );
        assert_eq!(lp.input_nodes, vec![a, b]);
    }

    #[test]
    fn residency_bound_is_enforced() {
        let mut g = HeGraph::new();
        let x = g.input(3);
        let r = g.rotate(x, 1);
        let s = g.add(x, r);
        g.output(s);
        let mut o = opts(32);
        o.max_live_cts = Some(1);
        match lower_to_program(&g, &o) {
            Err(LowerError::ResidencyExceeded { predicted, bound: 1 }) => {
                assert!(predicted >= 2)
            }
            other => panic!("expected ResidencyExceeded, got {other:?}"),
        }
        o.max_live_cts = Some(8);
        lower_to_program(&g, &o).unwrap();
    }

    #[test]
    fn auto_bootstrap_inserts_before_the_starved_multiply() {
        let mut g = HeGraph::new();
        let x = g.input(2);
        let w = g.plain_input(2);
        let m = g.mul_plain(x, w);
        let r = g.rescale(m);
        g.output(r);
        let mut o = opts(32);
        o.plain.insert(w, vec![1.0; 32]);
        o.auto_bootstrap = Some(AutoBootstrap {
            limb_bits: 30,
            scale_bits: 25,
            fresh_noise_bits: 10.0,
            min_budget_bits: 5.0,
            exit_level: 8,
        });
        let lp = lower_to_program(&g, &o).unwrap();
        assert_eq!(
            lp.program.ops().iter().map(|op| op.name()).collect::<Vec<_>>(),
            vec!["bootstrap", "mul_plain_rescale"],
        );
        assert_eq!(lp.counts.bootstraps, 1);
        assert!(lp.program.needs_bootstrapper());
    }

    #[test]
    fn auto_bootstrap_leaves_a_healthy_chain_alone() {
        let mut g = HeGraph::new();
        let x = g.input(8);
        let w = g.plain_input(8);
        let m = g.mul_plain(x, w);
        let r = g.rescale(m);
        g.output(r);
        let mut o = opts(32);
        o.plain.insert(w, vec![1.0; 32]);
        o.auto_bootstrap = Some(AutoBootstrap {
            limb_bits: 30,
            scale_bits: 25,
            fresh_noise_bits: 10.0,
            min_budget_bits: 5.0,
            exit_level: 10,
        });
        let lp = lower_to_program(&g, &o).unwrap();
        assert_eq!(lp.counts.bootstraps, 0);
    }

    #[test]
    fn auto_bootstrap_rejects_dag_programs() {
        let mut g = HeGraph::new();
        let x = g.input(3);
        let y = g.input(3);
        let s = g.add(x, y);
        g.output(s);
        let mut o = opts(32);
        o.auto_bootstrap = Some(AutoBootstrap {
            limb_bits: 30,
            scale_bits: 25,
            fresh_noise_bits: 10.0,
            min_budget_bits: 5.0,
            exit_level: 8,
        });
        assert!(matches!(
            lower_to_program(&g, &o),
            Err(LowerError::AutoBootstrapNeedsLinearChain { .. })
        ));
    }

    #[test]
    fn auto_bootstrap_that_cannot_raise_is_an_error() {
        let mut g = HeGraph::new();
        let x = g.input(2);
        let w = g.plain_input(2);
        let m = g.mul_plain(x, w);
        let r = g.rescale(m);
        g.output(r);
        let mut o = opts(32);
        o.plain.insert(w, vec![1.0; 32]);
        o.auto_bootstrap = Some(AutoBootstrap {
            limb_bits: 30,
            scale_bits: 25,
            fresh_noise_bits: 10.0,
            min_budget_bits: 5.0,
            exit_level: 2, // would not raise past the current level
        });
        assert!(matches!(
            lower_to_program(&g, &o),
            Err(LowerError::NoiseBudgetExhausted { level: 2 })
        ));
    }

    #[test]
    fn structural_errors_are_typed() {
        // No output.
        let mut g = HeGraph::new();
        g.input(3);
        assert!(matches!(
            lower_to_program(&g, &opts(32)),
            Err(LowerError::OutputCount { found: 0 })
        ));
        // ModRaise.
        let mut g = HeGraph::new();
        let x = g.input(2);
        let up = g.mod_raise(x, 5);
        g.output(up);
        assert!(matches!(
            lower_to_program(&g, &opts(32)),
            Err(LowerError::Unsupported { .. })
        ));
        // Unbound plaintext.
        let mut g = HeGraph::new();
        let x = g.input(3);
        let w = g.plain_input(3);
        let m = g.mul_plain(x, w);
        g.output(m);
        assert!(matches!(
            lower_to_program(&g, &opts(32)),
            Err(LowerError::MissingPlainValues { node }) if node == w.0
        ));
        // Ciphertext where a plaintext is required.
        let mut g = HeGraph::new();
        let x = g.input(3);
        let y = g.input(3);
        let m = g.mul_plain(x, y);
        g.output(m);
        assert!(matches!(
            lower_to_program(&g, &opts(32)),
            Err(LowerError::NotAPlainInput { node }) if node == y.0
        ));
    }

    #[test]
    fn reorder_groups_interleaved_rotations_into_one_hoist() {
        // A,B,A,B rotations of one source: program order hoists only the
        // leading run; reuse_order makes them adjacent so all four land in
        // one batch either way (grouping is by source, not adjacency) —
        // but reordering must at least not break lowering or change counts.
        let mut g = HeGraph::new();
        let x = g.input(4);
        let mut terms = Vec::new();
        for step in [1i64, 9, 2, 10] {
            terms.push(g.rotate(x, step));
        }
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = g.add(acc, t);
        }
        g.output(acc);
        let mut o = opts(32);
        o.reorder = true;
        let lp = lower_to_program(&g, &o).unwrap();
        assert_eq!(lp.counts.rotations, 4);
        let hoisted: usize = lp
            .program
            .ops()
            .iter()
            .map(|op| match op {
                PipelineOp::RotateHoisted { steps, .. } => steps.len(),
                _ => 0,
            })
            .sum();
        assert_eq!(hoisted, 4);
    }
}
