//! Offline stand-in for the `rayon` crate (API subset).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small slice of rayon's API the workspace uses, backed by a
//! persistent worker pool:
//!
//! - [`prelude`] with `par_chunks` / `par_chunks_mut` on slices and
//!   `into_par_iter()` on `Range<usize>`, supporting `enumerate`, `map`,
//!   `for_each`, and `collect::<Vec<_>>()`;
//! - [`join`] for two-way fork-join;
//! - [`current_num_threads`] / [`ThreadPoolBuilder`] (and a direct
//!   [`set_num_threads`] extension) for thread-count control.
//!
//! # Pool model
//!
//! A single process-wide pool of worker threads is spawned lazily on first
//! parallel call. The worker count defaults to `CL_THREADS` (if set) or the
//! machine's available parallelism. Work is dispatched as an indexed task
//! set `{0, .., len-1}`; the calling thread participates, and workers claim
//! indices from a shared atomic counter, so an idle pool costs nothing and
//! load imbalance between items self-corrects. One parallel region runs at
//! a time; parallel calls made *from inside* a worker run inline (no nested
//! pools, no deadlock).
//!
//! With an effective thread count of 1 every operation runs inline on the
//! caller — byte-for-byte the serial execution order. Since all uses in
//! this workspace dispatch data-independent items (limb-level loops),
//! results are bit-identical for every thread count; the workspace's
//! differential property tests enforce this.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------------

/// A type-erased indexed job: call `func(i)` for every claimed index `i`.
struct Job {
    /// Borrowed closure transmuted to `'static`; valid only while the
    /// dispatching call is blocked in [`Pool::run`], which does not return
    /// until every worker has exited the job.
    func: *const (dyn Fn(usize) + Sync),
    len: usize,
}
// SAFETY: the pointee is `Sync` and the dispatch protocol guarantees it
// outlives every access (see `Pool::run`).
unsafe impl Send for Job {}

struct PoolState {
    /// Monotonically increasing id of the current job; workers sleep until
    /// it changes.
    generation: u64,
    job: Option<Job>,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Wakes workers when a new job is published.
    job_ready: Condvar,
    /// Wakes the dispatcher when the last worker leaves a job.
    job_done: Condvar,
    /// Next unclaimed index of the current job.
    cursor: AtomicUsize,
    /// Workers currently inside the current job.
    active: AtomicUsize,
    /// Set when a task panicked; the dispatcher re-raises.
    panicked: AtomicBool,
    /// Number of spawned worker threads.
    workers: AtomicUsize,
    /// Serializes dispatchers (one parallel region at a time).
    dispatch: Mutex<()>,
}

thread_local! {
    /// True on pool worker threads: parallel calls from inside run inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Requested thread count; 0 = take the default lazily.
static REQUESTED_THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    // Cached: this sits on every dispatch path and `std::env::var` takes a
    // process-global lock. `CL_THREADS` is read once; later changes go
    // through `set_num_threads`.
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("CL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
    })
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            generation: 0,
            job: None,
        }),
        job_ready: Condvar::new(),
        job_done: Condvar::new(),
        cursor: AtomicUsize::new(0),
        active: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        workers: AtomicUsize::new(0),
        dispatch: Mutex::new(()),
    })
}

impl Pool {
    /// Ensures at least `n` worker threads exist (the caller counts as one
    /// executor, so `n` threads total means `n - 1` workers).
    fn ensure_workers(&'static self, n: usize) {
        let want = n.saturating_sub(1);
        loop {
            let have = self.workers.load(Ordering::Acquire);
            if have >= want {
                return;
            }
            if self
                .workers
                .compare_exchange(have, have + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            std::thread::Builder::new()
                .name(format!("cl-par-{}", have + 1))
                .spawn(move || self.worker_loop())
                .expect("failed to spawn pool worker");
        }
    }

    fn worker_loop(&'static self) {
        IN_WORKER.with(|w| w.set(true));
        let mut seen_generation = 0u64;
        loop {
            let job = {
                let mut state = self
                    .state
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                loop {
                    if state.generation != seen_generation {
                        seen_generation = state.generation;
                        if let Some(job) = &state.job {
                            // Register in `active` BEFORE releasing the
                            // state lock: the dispatcher retires the job
                            // under the same lock and only returns (freeing
                            // the borrowed closure) once `active` drains,
                            // so this ordering is what keeps `func` alive.
                            self.active.fetch_add(1, Ordering::AcqRel);
                            break Job {
                                func: job.func,
                                len: job.len,
                            };
                        }
                    }
                    state = self
                        .job_ready
                        .wait(state)
                        .unwrap_or_else(|p| p.into_inner());
                }
            };
            self.run_job(&job);
            if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Take the state lock before notifying so the wakeup cannot
                // slip between the dispatcher's `active` check and its wait.
                drop(self.state.lock().unwrap_or_else(|p| p.into_inner()));
                self.job_done.notify_all();
            }
        }
    }

    fn run_job(&self, job: &Job) {
        // SAFETY: the dispatcher blocks until `active == 0`, so the borrowed
        // closure behind `func` is still alive for the duration of this call.
        let f = unsafe { &*job.func };
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= job.len {
                break;
            }
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
        }
    }

    /// Runs `f(i)` for every `i in 0..len`, using up to the configured
    /// thread count. Falls back to an inline serial loop when parallelism
    /// is unavailable or pointless.
    fn run(&'static self, len: usize, f: &(dyn Fn(usize) + Sync)) {
        let threads = current_num_threads();
        if len <= 1 || threads <= 1 || IN_WORKER.with(|w| w.get()) {
            for i in 0..len {
                f(i);
            }
            return;
        }
        self.ensure_workers(threads);
        let _region = self
            .dispatch
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        // SAFETY: we erase the closure's lifetime to hand it to 'static
        // workers. The protocol below does not return until every worker
        // has left `run_job`, so the borrow outlives all uses.
        let func: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        self.cursor.store(0, Ordering::Release);
        self.panicked.store(false, Ordering::Release);
        let job = Job { func, len };
        {
            let mut state = self
                .state
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            state.generation = state.generation.wrapping_add(1);
            state.job = Some(job);
            self.job_ready.notify_all();
        }
        // The dispatcher participates too. While it executes job items it
        // counts as a pool thread: nested parallel calls made from inside
        // an item must run inline rather than re-enter the (non-reentrant)
        // dispatch lock.
        let was_worker = IN_WORKER.with(|w| w.replace(true));
        self.run_job(&Job { func, len });
        IN_WORKER.with(|w| w.set(was_worker));
        // Retire the job and wait for stragglers before releasing the borrow.
        {
            let mut state = self
                .state
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            state.job = None;
            while self.active.load(Ordering::Acquire) != 0 {
                state = self
                    .job_done
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }
        if self.panicked.swap(false, Ordering::AcqRel) {
            panic!("a rayon task panicked");
        }
    }
}

/// Runs `f(i)` for each `i in 0..len` on the global pool (crate-internal
/// primitive behind the iterator facade).
fn run_indexed(len: usize, f: &(dyn Fn(usize) + Sync)) {
    pool().run(len, f);
}

// ---------------------------------------------------------------------------
// Public thread-count control
// ---------------------------------------------------------------------------

/// Number of threads parallel operations may use (callers + workers).
pub fn current_num_threads() -> usize {
    let req = REQUESTED_THREADS.load(Ordering::Acquire);
    if req != 0 {
        req
    } else {
        default_threads()
    }
}

/// Overrides the global thread count at runtime (extension over real rayon,
/// which fixes the global pool size at first use; here the pool grows on
/// demand and shrinking just idles workers).
pub fn set_num_threads(n: usize) {
    REQUESTED_THREADS.store(n.max(1), Ordering::Release);
}

/// Builder matching `rayon::ThreadPoolBuilder` for the global pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of threads.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Applies the configuration to the global pool. Unlike real rayon this
    /// never fails and may be called repeatedly.
    pub fn build_global(self) -> Result<(), std::convert::Infallible> {
        if let Some(n) = self.num_threads {
            set_num_threads(n);
        }
        Ok(())
    }
}

/// Two-way fork-join: runs both closures, potentially in parallel, and
/// returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let cell_a = Mutex::new((Some(a), &mut ra));
        let cell_b = Mutex::new((Some(b), &mut rb));
        run_indexed(2, &|i| {
            if i == 0 {
                let mut guard = cell_a.lock().unwrap_or_else(|p| p.into_inner());
                let f = guard.0.take().expect("join closure runs once");
                *guard.1 = Some(f());
            } else {
                let mut guard = cell_b.lock().unwrap_or_else(|p| p.into_inner());
                let f = guard.0.take().expect("join closure runs once");
                *guard.1 = Some(f());
            }
        });
    }
    (
        ra.expect("join closure a completed"),
        rb.expect("join closure b completed"),
    )
}

// ---------------------------------------------------------------------------
// Iterator facade
// ---------------------------------------------------------------------------

/// The traits and adaptors user code imports (`use rayon::prelude::*`).
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Minimal parallel-iterator adaptors over indexed task sets.
pub mod iter {
    use super::run_indexed;
    use std::ops::Range;

    /// Send-able wrapper for a raw pointer used to hand disjoint chunks to
    /// workers.
    struct SyncPtr<T>(*mut T);
    unsafe impl<T> Sync for SyncPtr<T> {}
    unsafe impl<T> Send for SyncPtr<T> {}

    impl<T> SyncPtr<T> {
        /// Accessor that forces closures to capture the whole wrapper (2021
        /// edition closures would otherwise capture the raw-pointer field,
        /// which is not `Sync`).
        fn get(&self) -> *mut T {
            self.0
        }
    }

    /// Conversion into a parallel iterator (subset of rayon's trait).
    pub trait IntoParallelIterator {
        /// The parallel iterator type.
        type Iter;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Iter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }

    /// Terminal parallel-iterator operations (subset: `for_each`).
    pub trait ParallelIterator {
        /// The item type.
        type Item;
        /// Consumes the iterator, running `f` on every item in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send;
    }

    /// Parallel iterator over `Range<usize>`.
    pub struct ParRange {
        range: Range<usize>,
    }

    impl ParRange {
        /// Maps each index through `f`.
        pub fn map<T, F>(self, f: F) -> ParRangeMap<F>
        where
            F: Fn(usize) -> T + Sync,
            T: Send,
        {
            ParRangeMap {
                range: self.range,
                f,
            }
        }
    }

    impl ParallelIterator for ParRange {
        type Item = usize;
        fn for_each<F>(self, f: F)
        where
            F: Fn(usize) + Sync + Send,
        {
            let start = self.range.start;
            let len = self.range.end.saturating_sub(start);
            run_indexed(len, &|i| f(start + i));
        }
    }

    /// A mapped parallel range (`(0..n).into_par_iter().map(f)`).
    pub struct ParRangeMap<F> {
        range: Range<usize>,
        f: F,
    }

    impl<T: Send, F: Fn(usize) -> T + Sync> ParRangeMap<F> {
        /// Collects the mapped items in index order.
        pub fn collect<C: From<Vec<T>>>(self) -> C {
            let start = self.range.start;
            let len = self.range.end.saturating_sub(start);
            let mut slots: Vec<Option<T>> = Vec::with_capacity(len);
            slots.resize_with(len, || None);
            {
                let ptr = SyncPtr(slots.as_mut_ptr());
                let f = &self.f;
                run_indexed(len, &|i| {
                    let v = f(start + i);
                    // SAFETY: each index is claimed exactly once, so writes
                    // land in disjoint, initialized (None) slots.
                    unsafe { *ptr.get().add(i) = Some(v) };
                });
            }
            C::from(
                slots
                    .into_iter()
                    .map(|s| s.expect("every index produced a value"))
                    .collect::<Vec<T>>(),
            )
        }
    }

    impl<T: Send, F: Fn(usize) -> T + Sync> ParallelIterator for ParRangeMap<F> {
        type Item = T;
        fn for_each<G>(self, g: G)
        where
            G: Fn(T) + Sync + Send,
        {
            let start = self.range.start;
            let len = self.range.end.saturating_sub(start);
            let f = &self.f;
            run_indexed(len, &|i| g(f(start + i)));
        }
    }

    /// `par_chunks` on slices.
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over `size`-sized chunks.
        fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
            assert!(size != 0, "chunk size must be non-zero");
            ParChunks { slice: self, size }
        }
    }

    /// Parallel iterator over immutable chunks.
    pub struct ParChunks<'a, T> {
        slice: &'a [T],
        size: usize,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        /// Pairs each chunk with its index.
        pub fn enumerate(self) -> ParChunksEnum<'a, T> {
            ParChunksEnum {
                slice: self.slice,
                size: self.size,
            }
        }
    }

    impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
        type Item = &'a [T];
        fn for_each<F>(self, f: F)
        where
            F: Fn(&'a [T]) + Sync + Send,
        {
            self.enumerate().for_each(|(_, c)| f(c));
        }
    }

    /// Enumerated immutable chunks.
    pub struct ParChunksEnum<'a, T> {
        slice: &'a [T],
        size: usize,
    }

    impl<'a, T: Sync> ParallelIterator for ParChunksEnum<'a, T> {
        type Item = (usize, &'a [T]);
        fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a [T])) + Sync + Send,
        {
            let len = self.slice.len();
            let size = self.size;
            let n_chunks = len.div_ceil(size);
            let slice = self.slice;
            run_indexed(n_chunks, &|i| {
                let start = i * size;
                let end = (start + size).min(len);
                f((i, &slice[start..end]));
            });
        }
    }

    /// `par_chunks_mut` on slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over mutable `size`-sized chunks.
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            assert!(size != 0, "chunk size must be non-zero");
            ParChunksMut { slice: self, size }
        }
    }

    /// Parallel iterator over mutable chunks.
    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        size: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pairs each chunk with its index.
        pub fn enumerate(self) -> ParChunksMutEnum<'a, T> {
            ParChunksMutEnum {
                slice: self.slice,
                size: self.size,
            }
        }
    }

    impl<'a, T: Send + Sync> ParallelIterator for ParChunksMut<'a, T> {
        type Item = &'a mut [T];
        fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut [T]) + Sync + Send,
        {
            self.enumerate().for_each(|(_, c)| f(c));
        }
    }

    /// Enumerated mutable chunks.
    pub struct ParChunksMutEnum<'a, T> {
        slice: &'a mut [T],
        size: usize,
    }

    impl<'a, T: Send + Sync> ParallelIterator for ParChunksMutEnum<'a, T> {
        type Item = (usize, &'a mut [T]);
        fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a mut [T])) + Sync + Send,
        {
            let len = self.slice.len();
            let size = self.size;
            let n_chunks = len.div_ceil(size);
            let ptr = SyncPtr(self.slice.as_mut_ptr());
            run_indexed(n_chunks, &|i| {
                let start = i * size;
                let end = (start + size).min(len);
                // SAFETY: chunk ranges are disjoint and each index is
                // claimed exactly once, so the mutable borrows never alias.
                let chunk =
                    unsafe { std::slice::from_raw_parts_mut(ptr.get().add(start), end - start) };
                f((i, chunk));
            });
        }
    }
}

pub use iter::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};

/// Convenience re-export of the range adaptor for `Range<usize>` (used via
/// `(0..n).into_par_iter()`).
pub type ParRange = iter::ParRange;

#[allow(unused_imports)]
use std::ops::Range as _RangeDocOnly;

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_mut_matches_serial() {
        let mut par = vec![0u64; 1000];
        let mut ser = vec![0u64; 1000];
        set_num_threads(4);
        par.par_chunks_mut(100)
            .enumerate()
            .for_each(|(k, chunk)| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = (k * 1_000_003 + i) as u64;
                }
            });
        for (k, chunk) in ser.chunks_mut(100).enumerate() {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (k * 1_000_003 + i) as u64;
            }
        }
        assert_eq!(par, ser);
        set_num_threads(1);
    }

    #[test]
    fn map_collect_preserves_order() {
        set_num_threads(3);
        let v: Vec<usize> = (0..257usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, (0..257).map(|i| i * i).collect::<Vec<_>>());
        set_num_threads(1);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        set_num_threads(4);
        let acc = std::sync::atomic::AtomicUsize::new(0);
        (0..8usize).into_par_iter().for_each(|_| {
            (0..8usize)
                .into_par_iter()
                .for_each(|_| {
                    acc.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
        });
        assert_eq!(acc.load(std::sync::atomic::Ordering::Relaxed), 64);
        set_num_threads(1);
    }

    #[test]
    fn task_panic_propagates() {
        set_num_threads(2);
        let res = std::panic::catch_unwind(|| {
            (0..16usize).into_par_iter().for_each(|i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        });
        assert!(res.is_err());
        set_num_threads(1);
    }
}
