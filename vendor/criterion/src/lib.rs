//! Offline stand-in for the `criterion` crate (API subset).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides a minimal-but-functional timing harness with the API surface
//! the workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros. Each benchmark is timed with `std::time::Instant` over a small
//! fixed number of iterations and the mean is printed — no statistics,
//! plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (same semantics).
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 2;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Measurement iterations per benchmark (after warm-up).
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Parses CLI arguments (accepted and ignored in this stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Times a single closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    fn effective_samples(&self) -> u64 {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Times one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.effective_samples();
        run_one(&label, samples, &mut f);
        self
    }

    /// Times one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.effective_samples();
        run_one(&label, samples, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Closes the group (reporting is per-benchmark in this stand-in).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labeled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// How `iter_batched` amortizes setup cost (ignored: every stand-in batch
/// is one iteration).
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
    /// Explicit batch count.
    NumBatches(u64),
    /// Explicit iteration count.
    NumIterations(u64),
}

/// Passed to each benchmark closure; drives the timed routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed fresh inputs from `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: u64, f: &mut F) {
    let mut b = Bencher {
        iters: samples.max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters as f64;
    println!("bench: {label:<50} {:>12.3} us/iter (n={})", mean * 1e6, b.iters);
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
                b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
            });
            g.finish();
        }
        assert!(ran >= 3);
    }
}
