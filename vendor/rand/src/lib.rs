//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the exact API surface the workspace uses — `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `thread_rng()` — backed by xoshiro256++ (seeded via
//! SplitMix64). The generator passes BigCrush-level statistical batteries,
//! which is more than adequate for the sampling this repository does
//! (test-scale LWE noise, ternary secrets, uniform residues). It is NOT a
//! cryptographically secure RNG; neither is the real `StdRng` contract we
//! replace relied on for security anywhere in this repo's test-scale code.

use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// Core generator plumbing
// ---------------------------------------------------------------------------

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its "standard" distribution
    /// (full range for integers, `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

/// Types samplable from their full/standard distribution (`Rng::gen`).
pub trait SampleStandard {
    /// Samples one value.
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleStandard for bool {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Types uniformly samplable from a range (`Rng::gen_range`).
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_in<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self, inclusive: bool) -> Self;
}

fn uniform_below<G: RngCore + ?Sized>(rng: &mut G, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= 1 << 64);
    // Lemire's multiply-shift; bias < 2^-64 per draw, irrelevant here.
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as u128) - (lo as u128) + inclusive as u128;
                assert!(span > 0, "empty range in gen_range");
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128) - (lo as i128) + inclusive as i128;
                assert!(span > 0, "empty range in gen_range");
                (lo as i128 + uniform_below(rng, span as u128) as i128) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

// ---------------------------------------------------------------------------
// Seeding
// ---------------------------------------------------------------------------

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from ambient (non-cryptographic) entropy.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn entropy_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let count = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    let stack_probe = &count as *const _ as u64;
    nanos ^ count.rotate_left(17) ^ stack_probe
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// The standard generator: xoshiro256++ (Blackman & Vigna).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

/// A per-call "thread-local" generator handle (freshly entropy-seeded).
#[derive(Debug, Clone)]
pub struct ThreadRng(StdRng);

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Returns an entropy-seeded generator (non-deterministic across runs).
pub fn thread_rng() -> ThreadRng {
    ThreadRng(StdRng::from_entropy())
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::{StdRng, ThreadRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&s));
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
