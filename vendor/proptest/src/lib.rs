//! Offline stand-in for the `proptest` crate (API subset).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest this workspace uses: the `proptest!`
//! macro (with optional `#![proptest_config(...)]`), `any::<T>()`, range
//! strategies, tuple strategies, `collection::vec`, and the `prop_assert*`
//! macros. Unlike real proptest there is no shrinking: a failing case
//! panics immediately with the offending inputs left in the assertion
//! message. Case generation is deterministic per test name, so failures
//! reproduce across runs.

use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Subset of proptest's run configuration: the number of generated cases.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast while
        // still exercising varied inputs.
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Test RNG (self-contained; deterministic per test)
// ---------------------------------------------------------------------------

/// Deterministic test-case generator state.
pub mod test_runner {
    /// SplitMix64-based RNG seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `span` (`0 < span <= 2^64`).
        pub fn below(&mut self, span: u128) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of test-case values (no shrinking in this stand-in).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Full-range values for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning a wide magnitude range.
        let mag = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.next_u64() % 61) as i32 - 30;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag * 2f64.powi(exp)
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy over a type's full value range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u128) - (self.start as u128);
                assert!(span > 0, "empty range strategy");
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span as u128) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * u
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S` and a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u128;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($body:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($body)* }
    };
    ($($body:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($body)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let ($($arg,)+) = ($($crate::Strategy::sample(&($strat), &mut __rng),)+);
                $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts a property holds (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal (panics with both values on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The usual glob-import surface: strategies, config, and macros.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5, f in -1.0..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_size(v in collection::vec((any::<u8>(), any::<u8>()), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
