//! # CraterLake (ISCA 2022) — reproduction
//!
//! A from-scratch Rust reproduction of *CraterLake: A Hardware Accelerator
//! for Efficient Unbounded Computation on Encrypted Data* (Samardzic et al.,
//! ISCA 2022).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`math`] — modular arithmetic, NTT, automorphisms, encoder FFT
//! - [`rns`] — residue-number-system polynomials and fast base conversion
//! - [`ckks`] — the CKKS FHE scheme with standard and boosted keyswitching
//! - [`boot`] — packed CKKS bootstrapping (functional + analytic plan)
//! - [`runtime`] — checkpoint/resume pipeline executor with fault recovery
//! - [`server`] — multi-tenant job server: bounded queue, deadlines, isolation
//! - [`isa`] — the HE dataflow IR and the paper's cost formulas
//! - [`core`] — the CraterLake machine model (timing, energy, area)
//! - [`compiler`] — lowering and static scheduling
//! - [`baselines`] — the F1+ accelerator and CPU cost models
//! - [`apps`] — the paper's eight benchmarks as HE-graph generators
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-table/figure reproduction record.
//!
//! # Quickstart
//!
//! Run `cargo run --release --example quickstart` for a tour: encrypt a
//! vector, compute on it homomorphically, decrypt, and then compile the same
//! computation onto the simulated accelerator.

pub use cl_apps as apps;
pub use cl_baselines as baselines;
pub use cl_boot as boot;
pub use cl_ckks as ckks;
pub use cl_compiler as compiler;
pub use cl_core as core;
pub use cl_isa as isa;
pub use cl_math as math;
pub use cl_rns as rns;
pub use cl_runtime as runtime;
pub use cl_server as server;
