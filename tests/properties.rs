//! Property-based tests on cross-crate invariants: random programs through
//! the compiler and machine model must respect physical laws (no negative
//! times, monotone resource usage, conservation of traffic), and random
//! data through the functional library must round-trip.

use proptest::prelude::*;
use rand::SeedableRng as _;

use craterlake::baselines::craterlake_options;
use craterlake::compiler::{compile_and_run, CompileOptions};
use craterlake::core::ArchConfig;
use craterlake::isa::{HeGraph, NodeId};

/// Builds a random but well-formed HE graph from a compact recipe.
fn random_graph(ops: &[(u8, u8)], level: usize) -> HeGraph {
    let mut g = HeGraph::new();
    let mut pool: Vec<NodeId> = vec![g.input(level), g.input(level)];
    for &(kind, sel) in ops {
        let a = pool[sel as usize % pool.len()];
        let la = g.node(a).level;
        let new = match kind % 6 {
            0 => {
                let b = pool[(sel as usize / 2) % pool.len()];
                let b = g.mod_drop(b, la.min(g.node(b).level));
                let a = g.mod_drop(a, g.node(b).level);
                g.add(a, b)
            }
            1 if la >= 2 => {
                let m = g.mul_ct(a, a);
                g.rescale(m)
            }
            2 => g.rotate(a, (sel % 7) as i64 + 1),
            3 => {
                let p = g.plain_input(la);
                g.mul_plain(a, p)
            }
            4 if la >= 2 => g.rescale(a),
            _ => g.conjugate(a),
        };
        pool.push(new);
        if pool.len() > 6 {
            pool.remove(0);
        }
    }
    let last = *pool.last().unwrap();
    g.output(last);
    g
}

/// Small context shared by the serialization properties: 4 levels so
/// random ciphertext levels and digit counts have room to vary.
fn serialization_ctx() -> craterlake::ckks::CkksContext {
    use craterlake::ckks::{CkksContext, CkksParams};
    let params = CkksParams::builder()
        .ring_degree(128)
        .levels(4)
        .special_limbs(4)
        .limb_bits(45)
        .scale_bits(40)
        .build()
        .unwrap();
    CkksContext::new(params).unwrap()
}

/// A load result counts as an integrity rejection only for the three
/// serialization error variants — damage must be *diagnosed*, not just
/// fail somehow.
fn is_integrity_rejection<T>(r: &Result<T, craterlake::ckks::FheError>) -> bool {
    use craterlake::ckks::FheError;
    matches!(
        r,
        Err(FheError::Serialization { .. }
            | FheError::ChecksumMismatch { .. }
            | FheError::ParamsMismatch { .. })
    )
}

/// Exhaustive companion to the sampled corruption property: *every* byte
/// position of one ciphertext blob, flipped one at a time, must be
/// rejected. This nails the sections random sampling rarely lands on
/// (magic, version, reserved byte, the checksum fields themselves).
#[test]
fn every_single_byte_flip_of_a_ciphertext_blob_is_rejected() {
    use rand::SeedableRng;
    let ctx = serialization_ctx();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15C);
    let sk = ctx.keygen(&mut rng);
    let pt = ctx.encode(&[0.25, -0.75, 3.0], ctx.default_scale(), 2);
    let ct = ctx.encrypt(&pt, &sk, &mut rng);
    let blob = ctx.serialize_ciphertext(&ct);
    for i in 0..blob.len() {
        let mut bad = blob.clone();
        bad[i] ^= 0x01;
        let r = ctx.try_deserialize_ciphertext(&bad);
        assert!(
            is_integrity_rejection(&r),
            "byte {i} of {} flipped without rejection",
            blob.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_schedule_sanely(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..40),
        level in 8usize..40,
    ) {
        let g = random_graph(&ops, level);
        g.validate();
        let (arch, opts) = craterlake_options(1 << 16);
        let stats = compile_and_run(&g, &arch, &opts);
        // Physical sanity.
        prop_assert!(stats.cycles >= 0.0);
        prop_assert!(stats.hbm_busy <= stats.cycles + 1e-6);
        prop_assert!(stats.fu_utilization(&arch) <= 1.0 + 1e-9);
        prop_assert!(stats.bw_utilization() <= 1.0 + 1e-9);
        // Traffic is conserved: every byte belongs to a class.
        let sum: f64 = [
            craterlake::isa::TrafficClass::Ksh,
            craterlake::isa::TrafficClass::Input,
            craterlake::isa::TrafficClass::IntermLoad,
            craterlake::isa::TrafficClass::IntermStore,
        ]
        .iter()
        .map(|&c| stats.traffic_of(c))
        .sum();
        prop_assert!((sum - stats.total_traffic_bytes()).abs() < 1.0);
    }

    #[test]
    fn reordering_never_breaks_or_inflates_cycles_unboundedly(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..30),
    ) {
        let g = random_graph(&ops, 20);
        let (arch, base) = craterlake_options(1 << 16);
        let reordered_opts = CompileOptions { reorder: true, ..base.clone() };
        let a = compile_and_run(&g, &arch, &base);
        let b = compile_and_run(&g, &arch, &reordered_opts);
        // Reordering changes locality, not work: FU busy time is identical.
        let busy_a: f64 = a.fu_busy.values().sum();
        let busy_b: f64 = b.fu_busy.values().sum();
        prop_assert!((busy_a - busy_b).abs() < 1e-6);
    }

    #[test]
    fn more_bandwidth_never_hurts(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..25),
    ) {
        let g = random_graph(&ops, 30);
        let (_, opts) = craterlake_options(1 << 16);
        let slow = {
            let mut a = ArchConfig::craterlake();
            a.hbm_bytes_per_cycle = 512.0;
            compile_and_run(&g, &a, &opts).cycles
        };
        let fast = {
            let mut a = ArchConfig::craterlake();
            a.hbm_bytes_per_cycle = 2048.0;
            compile_and_run(&g, &a, &opts).cycles
        };
        prop_assert!(fast <= slow + 1e-6, "more bandwidth slowed things down");
    }

    #[test]
    fn ckks_roundtrip_random_vectors(seed in any::<u64>()) {
        use craterlake::ckks::{CkksContext, CkksParams};
        use rand::SeedableRng;
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(2)
            .special_limbs(2)
            .limb_bits(45)
            .scale_bits(40)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = ctx.keygen(&mut rng);
        let vals: Vec<f64> = (0..64)
            .map(|_| rand::Rng::gen_range(&mut rng, -100.0..100.0))
            .collect();
        let pt = ctx.encode(&vals, ctx.default_scale(), 2);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let back = ctx.decode(&ctx.decrypt(&ct, &sk), 64);
        for (a, b) in back.iter().zip(&vals) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn serialized_ciphertexts_roundtrip_bit_identically(
        seed in any::<u64>(),
        level in 1usize..5,
    ) {
        let ctx = serialization_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = ctx.keygen(&mut rng);
        let vals: Vec<f64> = (0..32)
            .map(|_| rand::Rng::gen_range(&mut rng, -10.0..10.0))
            .collect();
        let pt = ctx.encode(&vals, ctx.default_scale(), level);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let blob = ctx.serialize_ciphertext(&ct);
        let back = ctx.try_deserialize_ciphertext(&blob).unwrap();
        prop_assert_eq!(&back, &ct, "limb words, level, scale, and noise must survive");
        // Re-serialization is byte-identical: the format has one encoding.
        prop_assert_eq!(ctx.serialize_ciphertext(&back), blob);
    }

    #[test]
    fn serialized_keyswitch_hints_roundtrip(
        seed in any::<u64>(),
        digits in 1usize..4,
        standard in any::<bool>(),
    ) {
        use craterlake::ckks::KeySwitchKind;
        let ctx = serialization_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = ctx.keygen(&mut rng);
        let kind = if standard {
            KeySwitchKind::Standard
        } else {
            KeySwitchKind::Boosted { digits }
        };
        let ksk = ctx.relin_keygen(&sk, kind, &mut rng);
        let blob = ctx.serialize_keyswitch_key(&ksk);
        let back = ctx.try_deserialize_keyswitch_key(&blob).unwrap();
        prop_assert!(back.verify_integrity(), "regenerated hint must pass its digest");
        prop_assert_eq!(ctx.serialize_keyswitch_key(&back), blob);
    }

    #[test]
    fn corrupting_any_single_byte_of_a_blob_is_rejected(
        seed in any::<u64>(),
        ct_byte in any::<u64>(),
        ksk_byte in any::<u64>(),
    ) {
        let ctx = serialization_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = ctx.keygen(&mut rng);
        let pt = ctx.encode(&[1.5, -2.5], ctx.default_scale(), 2);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let mut blob = ctx.serialize_ciphertext(&ct);
        let i = (ct_byte as usize) % blob.len();
        blob[i] ^= 0x01;
        prop_assert!(
            is_integrity_rejection(&ctx.try_deserialize_ciphertext(&blob)),
            "flipping ciphertext byte {i} was not rejected"
        );

        let ksk = ctx.relin_keygen(&sk, craterlake::ckks::KeySwitchKind::Standard, &mut rng);
        let mut blob = ctx.serialize_keyswitch_key(&ksk);
        let i = (ksk_byte as usize) % blob.len();
        blob[i] ^= 0x01;
        prop_assert!(
            is_integrity_rejection(&ctx.try_deserialize_keyswitch_key(&blob)),
            "flipping keyswitch-hint byte {i} was not rejected"
        );
    }

    #[test]
    fn bgv_roundtrip_random_vectors(seed in any::<u64>()) {
        use craterlake::ckks::bgv::BgvContext;
        use craterlake::ckks::{CkksContext, CkksParams};
        use rand::SeedableRng;
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(2)
            .special_limbs(2)
            .limb_bits(45)
            .scale_bits(40)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let bgv = BgvContext::new(&ctx, 65537);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = ctx.keygen(&mut rng);
        let vals: Vec<u64> = (0..128)
            .map(|_| rand::Rng::gen_range(&mut rng, 0..65537u64))
            .collect();
        let ct = bgv.encrypt(&vals, 2, &sk, &mut rng);
        prop_assert_eq!(bgv.decrypt(&ct, &sk), vals);
    }
}

// ---------------------------------------------------------------------------
// Write-ahead journal damage tolerance (crash-durable serving).
// ---------------------------------------------------------------------------

/// Writes a small but representative journal — shared blobs, four jobs in
/// different lifecycle states — and returns its on-disk bytes plus the
/// set of job ids it contains.
fn seeded_journal_bytes() -> (Vec<u8>, Vec<u64>) {
    use craterlake::server::{FsyncPolicy, Journal};
    let dir = std::env::temp_dir().join(format!(
        "cl-journal-prop-seed-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut journal, _) = Journal::open(&dir, FsyncPolicy::Never, 1_000).unwrap();
    let program = vec![0xA5u8; 24];
    let keys = vec![0x5Au8; 48];
    let ids = vec![10u64, 11, 12, 13];
    for (i, &id) in ids.iter().enumerate() {
        let p = journal.append_blob(&program).unwrap();
        let input = vec![i as u8; 32];
        let inp = journal.append_blob(&input).unwrap();
        let k = journal.append_blob(&keys).unwrap();
        journal
            .append_admitted(id, "tenant-x", Some(5_000), p, inp, k)
            .unwrap();
    }
    journal.append_dispatched(10).unwrap();
    journal.append_dispatched(11).unwrap();
    journal.append_completed(10, &[1, 2, 3, 4]).unwrap();
    journal.append_failed(11, 4, "integrity failure").unwrap();
    journal.sync().unwrap();
    let path = journal.path().to_path_buf();
    drop(journal);
    let bytes = std::fs::read(path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (bytes, ids)
}

/// Reopens journal bytes written to a fresh directory, asserting the
/// replay machinery's damage contract: no panic, no error, and —
/// because every record body is checksummed — anything replayed is a
/// byte-identical original record, so replayed job ids are always a
/// subset of the originals.
fn assert_journal_damage_tolerated(tag: &str, bytes: &[u8], original_ids: &[u64]) {
    use craterlake::server::{FsyncPolicy, Journal};
    let dir = std::env::temp_dir().join(format!(
        "cl-journal-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("journal-0.wal"), bytes).unwrap();
    let (_, replay) =
        Journal::open(&dir, FsyncPolicy::Never, 1_000).expect("damage must never be fatal");
    for job in &replay.jobs {
        assert!(
            original_ids.contains(&job.id),
            "{tag}: replayed id {} never existed (checksum let damage through)",
            job.id
        );
        // A damaged `Admitted` record may leave a partial entry (merged
        // from later lifecycle records) with an empty tenant; an entry
        // that *claims* admission must carry the original tenant intact.
        if job.admitted {
            assert_eq!(job.tenant, "tenant-x", "{tag}: tenant field damaged");
        } else {
            assert!(job.tenant.is_empty(), "{tag}: fabricated tenant");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Exhaustive sweep: every single-byte flip and every truncation length
/// of a journal file is absorbed — damaged records are skipped (and the
/// scan resyncs to later intact records), never a panic, never an error,
/// never a fabricated job.
#[test]
fn journal_survives_every_single_byte_flip_and_truncation() {
    let (bytes, ids) = seeded_journal_bytes();
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x01;
        assert_journal_damage_tolerated("flip", &bad, &ids);
    }
    for cut in 0..bytes.len() {
        assert_journal_damage_tolerated("cut", &bytes[..cut], &ids);
    }
}
