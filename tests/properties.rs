//! Property-based tests on cross-crate invariants: random programs through
//! the compiler and machine model must respect physical laws (no negative
//! times, monotone resource usage, conservation of traffic), and random
//! data through the functional library must round-trip.

use proptest::prelude::*;

use craterlake::baselines::craterlake_options;
use craterlake::compiler::{compile_and_run, CompileOptions};
use craterlake::core::ArchConfig;
use craterlake::isa::{HeGraph, NodeId};

/// Builds a random but well-formed HE graph from a compact recipe.
fn random_graph(ops: &[(u8, u8)], level: usize) -> HeGraph {
    let mut g = HeGraph::new();
    let mut pool: Vec<NodeId> = vec![g.input(level), g.input(level)];
    for &(kind, sel) in ops {
        let a = pool[sel as usize % pool.len()];
        let la = g.node(a).level;
        let new = match kind % 6 {
            0 => {
                let b = pool[(sel as usize / 2) % pool.len()];
                let b = g.mod_drop(b, la.min(g.node(b).level));
                let a = g.mod_drop(a, g.node(b).level);
                g.add(a, b)
            }
            1 if la >= 2 => {
                let m = g.mul_ct(a, a);
                g.rescale(m)
            }
            2 => g.rotate(a, (sel % 7) as i64 + 1),
            3 => {
                let p = g.plain_input(la);
                g.mul_plain(a, p)
            }
            4 if la >= 2 => g.rescale(a),
            _ => g.conjugate(a),
        };
        pool.push(new);
        if pool.len() > 6 {
            pool.remove(0);
        }
    }
    let last = *pool.last().unwrap();
    g.output(last);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_schedule_sanely(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..40),
        level in 8usize..40,
    ) {
        let g = random_graph(&ops, level);
        g.validate();
        let (arch, opts) = craterlake_options(1 << 16);
        let stats = compile_and_run(&g, &arch, &opts);
        // Physical sanity.
        prop_assert!(stats.cycles >= 0.0);
        prop_assert!(stats.hbm_busy <= stats.cycles + 1e-6);
        prop_assert!(stats.fu_utilization(&arch) <= 1.0 + 1e-9);
        prop_assert!(stats.bw_utilization() <= 1.0 + 1e-9);
        // Traffic is conserved: every byte belongs to a class.
        let sum: f64 = [
            craterlake::isa::TrafficClass::Ksh,
            craterlake::isa::TrafficClass::Input,
            craterlake::isa::TrafficClass::IntermLoad,
            craterlake::isa::TrafficClass::IntermStore,
        ]
        .iter()
        .map(|&c| stats.traffic_of(c))
        .sum();
        prop_assert!((sum - stats.total_traffic_bytes()).abs() < 1.0);
    }

    #[test]
    fn reordering_never_breaks_or_inflates_cycles_unboundedly(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..30),
    ) {
        let g = random_graph(&ops, 20);
        let (arch, base) = craterlake_options(1 << 16);
        let reordered_opts = CompileOptions { reorder: true, ..base.clone() };
        let a = compile_and_run(&g, &arch, &base);
        let b = compile_and_run(&g, &arch, &reordered_opts);
        // Reordering changes locality, not work: FU busy time is identical.
        let busy_a: f64 = a.fu_busy.values().sum();
        let busy_b: f64 = b.fu_busy.values().sum();
        prop_assert!((busy_a - busy_b).abs() < 1e-6);
    }

    #[test]
    fn more_bandwidth_never_hurts(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..25),
    ) {
        let g = random_graph(&ops, 30);
        let (_, opts) = craterlake_options(1 << 16);
        let slow = {
            let mut a = ArchConfig::craterlake();
            a.hbm_bytes_per_cycle = 512.0;
            compile_and_run(&g, &a, &opts).cycles
        };
        let fast = {
            let mut a = ArchConfig::craterlake();
            a.hbm_bytes_per_cycle = 2048.0;
            compile_and_run(&g, &a, &opts).cycles
        };
        prop_assert!(fast <= slow + 1e-6, "more bandwidth slowed things down");
    }

    #[test]
    fn ckks_roundtrip_random_vectors(seed in any::<u64>()) {
        use craterlake::ckks::{CkksContext, CkksParams};
        use rand::SeedableRng;
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(2)
            .special_limbs(2)
            .limb_bits(45)
            .scale_bits(40)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = ctx.keygen(&mut rng);
        let vals: Vec<f64> = (0..64)
            .map(|_| rand::Rng::gen_range(&mut rng, -100.0..100.0))
            .collect();
        let pt = ctx.encode(&vals, ctx.default_scale(), 2);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let back = ctx.decode(&ctx.decrypt(&ct, &sk), 64);
        for (a, b) in back.iter().zip(&vals) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn bgv_roundtrip_random_vectors(seed in any::<u64>()) {
        use craterlake::ckks::bgv::BgvContext;
        use craterlake::ckks::{CkksContext, CkksParams};
        use rand::SeedableRng;
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(2)
            .special_limbs(2)
            .limb_bits(45)
            .scale_bits(40)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let bgv = BgvContext::new(&ctx, 65537);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = ctx.keygen(&mut rng);
        let vals: Vec<u64> = (0..128)
            .map(|_| rand::Rng::gen_range(&mut rng, 0..65537u64))
            .collect();
        let ct = bgv.encrypt(&vals, 2, &sk, &mut rng);
        prop_assert_eq!(bgv.decrypt(&ct, &sk), vals);
    }
}
