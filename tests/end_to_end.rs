//! Cross-crate integration tests: the functional library, the analytic
//! cost model, the compiler, and the machine model agree with each other
//! and with the paper's headline claims.

use craterlake::apps::{lola_mnist_uw, packed_bootstrapping, unpacked_bootstrapping};
use craterlake::baselines::{craterlake_options, f1_plus_options, CpuModel};
use craterlake::ckks::{CkksContext, CkksParams, KeySwitchKind};
use craterlake::compiler::{compile_and_run, CompileOptions, KsPolicy};
use craterlake::core::{energy, ArchConfig};
use craterlake::isa::{FuKind, HeGraph, TrafficClass};

#[test]
fn simulator_ntt_accounting_matches_cost_formulas() {
    // One rotation at level L with 1-digit boosted keyswitching must charge
    // exactly (3+t)L + 2a logical NTTs (x2 unit passes) plus the rescale-free
    // automorphism work.
    let l = 20usize;
    let mut g = HeGraph::new();
    let x = g.input(l);
    let r = g.rotate(x, 5);
    g.output(r);
    let arch = ArchConfig::craterlake();
    let opts = CompileOptions {
        reorder: false,
        n: 1 << 16,
        ks_policy: KsPolicy::Fixed(craterlake::isa::KsAlgorithm::Boosted(1)),
    };
    let stats = compile_and_run(&g, &arch, &opts);
    let counts = craterlake::isa::cost::boosted_keyswitch_ops(l, 1);
    // NTT instance-busy cycles = 2 unit passes x logical NTTs x N/E.
    let expect = 2.0 * counts.ntt as f64 * (1 << 16) as f64 / arch.lanes as f64;
    let got = stats.fu_busy[&FuKind::Ntt];
    assert!(
        (got - expect).abs() < 1e-6,
        "NTT accounting: got {got}, expected {expect}"
    );
}

#[test]
fn keyswitch_hint_traffic_matches_size_formulas() {
    // A single rotation fetches exactly one seeded 1-digit hint.
    let l = 30usize;
    let n = 1 << 16;
    let mut g = HeGraph::new();
    let x = g.input(l);
    let r = g.rotate(x, 1);
    g.output(r);
    let (arch, _) = craterlake_options(n);
    let opts = CompileOptions {
        reorder: false,
        n,
        ks_policy: KsPolicy::Fixed(craterlake::isa::KsAlgorithm::Boosted(1)),
    };
    let stats = compile_and_run(&g, &arch, &opts);
    let expect = craterlake::isa::cost::boosted_ksh_bytes(n, l, 1, 28, true) as f64;
    let got = stats.traffic_of(TrafficClass::Ksh);
    assert!((got - expect).abs() < 1.0, "hint bytes: {got} vs {expect}");
}

#[test]
fn packed_bootstrapping_headline_shape() {
    // The paper's headline: milliseconds on CraterLake, seconds on the CPU.
    let b = packed_bootstrapping();
    let (arch, opts) = craterlake_options(b.n);
    let stats = compile_and_run(&b.graph, &arch, &opts);
    let ms = stats.exec_ms(&arch);
    assert!(
        (1.0..10.0).contains(&ms),
        "packed bootstrapping should take single-digit ms, got {ms}"
    );
    let cpu = CpuModel::paper_calibrated();
    let cpu_s = cpu.time_for_graph(&b.graph, b.n, &opts.ks_policy);
    assert!(cpu_s > 5.0, "CPU bootstrapping takes many seconds, got {cpu_s}");
    let speedup = cpu_s * 1e3 / ms;
    assert!(
        speedup > 1000.0,
        "CraterLake must be >1,000x the CPU on bootstrapping, got {speedup}"
    );
}

#[test]
fn craterlake_beats_f1_plus_on_deep_not_much_on_shallow() {
    let deep = packed_bootstrapping();
    let shallow = lola_mnist_uw();
    let deep_cl = {
        let (a, o) = craterlake_options(deep.n);
        compile_and_run(&deep.graph, &a, &o).cycles
    };
    let deep_f1 = {
        let (a, o) = f1_plus_options(deep.n);
        compile_and_run(&deep.graph, &a, &o).cycles
    };
    let shallow_cl = {
        let (a, o) = craterlake_options(shallow.n);
        compile_and_run(&shallow.graph, &a, &o).cycles
    };
    let shallow_f1 = {
        let (a, o) = f1_plus_options(shallow.n);
        compile_and_run(&shallow.graph, &a, &o).cycles
    };
    let deep_ratio = deep_f1 / deep_cl;
    let shallow_ratio = shallow_f1 / shallow_cl;
    assert!(deep_ratio > 2.0, "deep speedup vs F1+ too small: {deep_ratio}");
    assert!(
        shallow_ratio < deep_ratio,
        "F1+ must be comparatively better on shallow work: {shallow_ratio} vs {deep_ratio}"
    );
}

#[test]
fn power_stays_within_the_paper_envelope() {
    // Sec. 9.2: power stays within a 320 W envelope.
    for b in [packed_bootstrapping(), unpacked_bootstrapping(), lola_mnist_uw()] {
        let (arch, opts) = craterlake_options(b.n);
        let stats = compile_and_run(&b.graph, &arch, &opts);
        let p = energy::power_breakdown(&arch, &stats);
        assert!(
            p.total() < 320.0,
            "{} exceeds the 320 W envelope: {:.0} W",
            b.name,
            p.total()
        );
    }
}

#[test]
fn smaller_register_file_hurts_deep_benchmarks() {
    // Fig. 11: deep benchmarks suffer with less on-chip storage.
    let b = packed_bootstrapping();
    let (_, opts) = craterlake_options(b.n);
    let base = compile_and_run(&b.graph, &ArchConfig::craterlake(), &opts).cycles;
    let small = compile_and_run(
        &b.graph,
        &ArchConfig::craterlake().with_rf_bytes(100 << 20),
        &opts,
    )
    .cycles;
    assert!(
        small >= base,
        "shrinking the register file must not speed things up"
    );
}

#[test]
fn functional_and_modeled_keyswitching_share_op_structure() {
    // The functional library's hint sizes obey the same formulas the
    // performance model uses.
    let params = CkksParams::builder()
        .ring_degree(64)
        .levels(6)
        .special_limbs(6)
        .limb_bits(40)
        .scale_bits(36)
        .build()
        .unwrap();
    let ctx = CkksContext::new(params).unwrap();
    let mut rng = rand::thread_rng();
    let sk = ctx.keygen(&mut rng);
    for digits in 1..=3usize {
        let ksk = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits }, &mut rng);
        let words_model =
            craterlake::isa::cost::boosted_ksh_bytes(64, 6, digits, 64, false) / 8;
        assert_eq!(
            ksk.num_words_full() as u64,
            words_model,
            "hint words mismatch at t={digits}"
        );
    }
}

#[test]
fn homomorphic_pipeline_matches_plaintext_reference() {
    // A small dot-product + polynomial pipeline computed homomorphically
    // equals the plaintext computation (the core privacy claim of Fig. 1).
    let params = CkksParams::builder()
        .ring_degree(256)
        .levels(5)
        .special_limbs(5)
        .limb_bits(45)
        .scale_bits(45)
        .build()
        .unwrap();
    let ctx = CkksContext::new(params).unwrap();
    let mut rng = rand::thread_rng();
    let sk = ctx.keygen(&mut rng);
    let kind = KeySwitchKind::Boosted { digits: 1 };
    let relin = ctx.relin_keygen(&sk, kind, &mut rng);
    let xs: Vec<f64> = (0..8).map(|i| (i as f64) / 4.0 - 1.0).collect();
    let pt = ctx.encode(&xs, ctx.default_scale(), ctx.max_level());
    let ct = ctx.encrypt(&pt, &sk, &mut rng);
    // y = x^2 - x  homomorphically.
    let sq = ctx.rescale(&ctx.square(&ct, &relin));
    let x_d = ctx.mod_drop(&ct, sq.level());
    let y = ctx.sub(&sq, &x_d.with_scale(sq.scale()));
    let got = ctx.decode(&ctx.decrypt(&y, &sk), 8);
    for (g, &x) in got.iter().zip(&xs) {
        assert!((g - (x * x - x)).abs() < 1e-4, "{g} vs {}", x * x - x);
    }
}
