//! End-to-end acceptance for compiler-driven execution: a real workload
//! graph (`cl-apps`' runnable LoLa-MNIST layer) is lowered by
//! `cl-compiler::lower_to_program` into a `cl-runtime` `Program` and run
//! through the pipeline executor, and three promises the compiler makes
//! are checked against reality:
//!
//! 1. **Bit-identity** — the compiled program's output ciphertext equals a
//!    hand-written direct homomorphic evaluation of the same layer limb
//!    for limb, and its decryption matches the unencrypted
//!    [`eval_plain`] reference.
//! 2. **Predicted = measured** — [`predict_program`]'s closed-form
//!    `OpSnapshot` equals the live `cl-trace` counter delta of a
//!    warm-cache run *exactly*, field by field, and the schedule's
//!    high-level counts (rotations / ct-mults / pt-mults) match too.
//! 3. **Residency** — the Belady-style residency replay's predicted
//!    live-ciphertext high-water mark equals the executor's measured
//!    `peak_live_cts`.
//!
//! The `trace` feature is lit for this binary through the root crate's
//! dev-dependency on `cl-trace`, so the counters are live here.

use std::sync::{Mutex, MutexGuard};

use craterlake::apps::{eval_plain, lola_layer_runnable, RunnableWorkload};
use craterlake::boot::BootstrapKeys;
use craterlake::ckks::{Ciphertext, CkksContext, CkksParams, GuardrailPolicy, KeySwitchKind};
use craterlake::compiler::{lower_to_program, predict_program, LowerOptions, LoweredProgram};
use craterlake::runtime::{ExecutorConfig, PipelineExecutor, RunOutcome};
use cl_trace::OpSnapshot;
use rand::SeedableRng;

/// Counters are process-global; every test in this binary holds this lock
/// for its entire body so a concurrently scheduled test cannot leak passes
/// into another test's measured delta.
static COUNTERS: Mutex<()> = Mutex::new(());

fn counter_lock() -> MutexGuard<'static, ()> {
    assert!(
        cl_trace::enabled(),
        "compiled-program validation needs live counters; the root crate's \
         dev-dependency must enable cl-trace/trace"
    );
    COUNTERS.lock().unwrap_or_else(|p| p.into_inner())
}

/// Ring-64 strict context: 32 slots, 6 limbs — the executor fixture
/// geometry. Strict policy is required by `PipelineExecutor`.
fn strict_ctx() -> CkksContext {
    let params = CkksParams::builder()
        .ring_degree(64)
        .levels(6)
        .special_limbs(6)
        .limb_bits(45)
        .scale_bits(40)
        .build()
        .unwrap();
    CkksContext::new(params)
        .unwrap()
        .with_policy(GuardrailPolicy::Strict { min_budget_bits: -60.0 })
}

const SLOTS: usize = 32;
const INPUT_LEVEL: usize = 4;

/// The workload under test: 9 diagonals at stride 1 with the square
/// activation — baby = giant = 3, so the lowering gets a 2-step hoisting
/// batch, two singleton giant rotations, a plaintext-multiply fan-in and
/// one relinearized square.
fn layer() -> RunnableWorkload {
    lola_layer_runnable(SLOTS, INPUT_LEVEL, 9, 1, true)
}

fn compile(w: &RunnableWorkload) -> LoweredProgram {
    lower_to_program(
        &w.graph,
        &LowerOptions {
            slots: SLOTS,
            plain: w.plain.clone(),
            reorder: true,
            auto_bootstrap: None,
            max_live_cts: None,
        },
    )
    .expect("layer graph lowers")
}

/// Deterministic input image: 32 slot values in roughly `[-0.4, 0.55)`.
fn input_slots() -> Vec<f64> {
    (0..SLOTS).map(|i| ((i * 5) % 17) as f64 / 17.0 - 0.4).collect()
}

fn keys_for(
    ctx: &CkksContext,
    lowered: &LoweredProgram,
) -> (craterlake::ckks::SecretKey, BootstrapKeys) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let sk = ctx.keygen_sparse(8, &mut rng);
    let keys = BootstrapKeys::generate(
        ctx,
        &sk,
        KeySwitchKind::Standard,
        &lowered.rotation_steps,
        &mut rng,
    );
    (sk, keys)
}

fn encrypt_input(ctx: &CkksContext, sk: &craterlake::ckks::SecretKey) -> Ciphertext {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    ctx.encrypt(
        &ctx.encode(&input_slots(), ctx.default_scale(), INPUT_LEVEL),
        sk,
        &mut rng,
    )
}

fn run_compiled(
    ctx: &CkksContext,
    keys: &BootstrapKeys,
    x: &Ciphertext,
    lowered: &LoweredProgram,
) -> (Ciphertext, u64) {
    let config = ExecutorConfig {
        checkpoint_every: 0,
        max_retries: 1,
        checkpoint_dir: None,
    };
    let mut exec = PipelineExecutor::new(ctx, keys, config).unwrap();
    let out = match exec.run_graph(std::slice::from_ref(x), &lowered.program).unwrap() {
        RunOutcome::Completed(ct) => ct,
        RunOutcome::Crashed => unreachable!("no fault plan attached"),
    };
    (out, exec.telemetry().peak_live_cts)
}

/// Hand-written direct evaluation of the layer with the same primitives
/// the executor uses: one hoisted batch for the baby rotations, plaintext
/// multiplies encoded at the to-be-dropped modulus (the executor's
/// `MulPlain` convention), singleton giant rotations, one rescale, the
/// relinearized square, one rescale.
fn direct_layer(
    ctx: &CkksContext,
    keys: &BootstrapKeys,
    w: &RunnableWorkload,
    x: &Ciphertext,
) -> Ciphertext {
    let weights: Vec<&Vec<f64>> = w.plain.values().collect();
    let k1 = keys.try_rot_key(ctx, 1).unwrap();
    let k2 = keys.try_rot_key(ctx, 2).unwrap();
    let rotated = ctx
        .try_rotate_hoisted_many(x, &[1, 2], &[k1.as_ref(), k2.as_ref()])
        .unwrap();
    let babies = [x.clone(), rotated[0].clone(), rotated[1].clone()];
    let q_drop = ctx.rns().modulus_value((INPUT_LEVEL - 1) as u32) as f64;
    let mut acc: Option<Ciphertext> = None;
    for j in 0..3usize {
        let mut inner: Option<Ciphertext> = None;
        for (b, baby) in babies.iter().enumerate() {
            let p = ctx.encode(weights[j * 3 + b], q_drop, INPUT_LEVEL);
            let term = ctx.try_mul_plain(baby, &p).unwrap();
            inner = Some(match inner {
                None => term,
                Some(a) => ctx.try_add(&a, &term).unwrap(),
            });
        }
        let inner = inner.unwrap();
        let shifted = if j == 0 {
            inner
        } else {
            let step = 3 * j as i64;
            let key = keys.try_rot_key(ctx, step).unwrap();
            ctx.try_rotate(&inner, step, key.as_ref()).unwrap()
        };
        acc = Some(match acc {
            None => shifted,
            Some(a) => ctx.try_add(&a, &shifted).unwrap(),
        });
    }
    let y = ctx.try_rescale(&acc.unwrap()).unwrap();
    let relin = keys.try_relin(ctx).unwrap();
    let sq = ctx.try_square(&y, relin.as_ref()).unwrap();
    ctx.try_rescale(&sq).unwrap()
}

#[test]
fn compiled_layer_is_bit_identical_to_direct_evaluation() {
    let _g = counter_lock();
    let ctx = strict_ctx();
    let w = layer();
    let lowered = compile(&w);
    assert_eq!(lowered.input_nodes, w.inputs, "one encrypted input, bound in graph order");
    assert!(!lowered.needs_conjugation);
    let (sk, keys) = keys_for(&ctx, &lowered);
    let x = encrypt_input(&ctx, &sk);

    let (out, _) = run_compiled(&ctx, &keys, &x, &lowered);
    let expect = direct_layer(&ctx, &keys, &w, &x);
    assert_eq!(out, expect, "compiled program must be bit-identical to direct evaluation");

    // And both must approximate the unencrypted reference.
    let reference = eval_plain(&w, &[input_slots()]);
    let got = ctx.decode(&ctx.decrypt(&out, &sk), SLOTS);
    for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
        assert!(
            (g - r).abs() < 1e-3,
            "slot {i}: decrypted {g} vs plain reference {r}"
        );
    }
}

#[test]
fn predicted_op_counts_match_measured_exactly() {
    let _g = counter_lock();
    let ctx = strict_ctx();
    let w = layer();
    let lowered = compile(&w);
    let (sk, keys) = keys_for(&ctx, &lowered);
    let x = encrypt_input(&ctx, &sk);

    // Warm run: materializes every seeded hint (hint expansion does real
    // NTT work the cost model deliberately excludes).
    let (warm, _) = run_compiled(&ctx, &keys, &x, &lowered);
    // Measured run: cache hits only, so the delta is pure compute.
    let before = OpSnapshot::capture();
    let (out, _) = run_compiled(&ctx, &keys, &x, &lowered);
    let measured = OpSnapshot::capture().delta_since(&before);
    assert_eq!(out, warm, "warm and measured runs must agree");

    let predicted = predict_program(
        ctx.max_level(),
        KeySwitchKind::Standard,
        &[INPUT_LEVEL],
        &lowered.program,
    )
    .expect("program predicts");

    assert_eq!(measured.ntt, predicted.ntt, "ntt");
    assert_eq!(measured.intt, predicted.intt, "intt");
    assert_eq!(measured.mult, predicted.mult, "mult");
    assert_eq!(measured.add, predicted.add, "add");
    assert_eq!(measured.base_conv, predicted.base_conv, "base_conv");
    assert_eq!(measured.automorph, predicted.automorph, "automorph");
    assert_eq!(measured.rotations, predicted.rotations, "rotations");
    assert_eq!(measured.ct_mults, predicted.ct_mults, "ct_mults");
    assert_eq!(measured.pt_mults, predicted.pt_mults, "pt_mults");
    assert_eq!(measured.hint_regen, 0, "warm run must not regenerate hints");

    // The schedule-level counts the compiler promises match both sides.
    assert_eq!(lowered.counts.rotations, measured.rotations);
    assert_eq!(lowered.counts.ct_mults, measured.ct_mults);
    assert_eq!(lowered.counts.pt_mults, measured.pt_mults);
    assert_eq!(lowered.counts.bootstraps, 0);
    // BSGS shape at 9 diagonals: 2 baby + 2 giant rotations, 9 diagonal
    // multiplies, 1 square.
    assert_eq!(measured.rotations, 4);
    assert_eq!(measured.pt_mults, 9);
    assert_eq!(measured.ct_mults, 1);
}

#[test]
fn residency_plan_matches_executor_high_water_mark() {
    let _g = counter_lock();
    let ctx = strict_ctx();
    let w = layer();
    let lowered = compile(&w);
    let (sk, keys) = keys_for(&ctx, &lowered);
    let x = encrypt_input(&ctx, &sk);
    let (_, peak) = run_compiled(&ctx, &keys, &x, &lowered);
    assert_eq!(
        peak, lowered.predicted_peak_live,
        "Belady residency replay must predict the executor's live-ciphertext peak"
    );
    // The BSGS middle is the high-water mark: the input and its two
    // hoisted baby rotations stay resident across all three giant steps,
    // alongside the parked matvec partial sum, a parked inner term and
    // the accumulator.
    assert_eq!(peak, 6);
}

#[test]
fn prediction_holds_on_a_second_layer_shape() {
    let _g = counter_lock();
    let ctx = strict_ctx();
    // 4 diagonals at stride 2, no activation: baby = giant = 2, different
    // rotation steps (2 and 4), one rescale only.
    let w = lola_layer_runnable(SLOTS, 3, 4, 2, false);
    let lowered = lower_to_program(
        &w.graph,
        &LowerOptions {
            slots: SLOTS,
            plain: w.plain.clone(),
            reorder: true,
            auto_bootstrap: None,
            max_live_cts: None,
        },
    )
    .unwrap();
    let (sk, keys) = keys_for(&ctx, &lowered);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let x = ctx.encrypt(&ctx.encode(&input_slots(), ctx.default_scale(), 3), &sk, &mut rng);

    let (_, peak) = run_compiled(&ctx, &keys, &x, &lowered);
    assert_eq!(peak, lowered.predicted_peak_live);

    let before = OpSnapshot::capture();
    let (out, _) = run_compiled(&ctx, &keys, &x, &lowered);
    let measured = OpSnapshot::capture().delta_since(&before);
    let predicted =
        predict_program(ctx.max_level(), KeySwitchKind::Standard, &[3], &lowered.program).unwrap();
    assert_eq!(measured.ntt, predicted.ntt, "ntt");
    assert_eq!(measured.intt, predicted.intt, "intt");
    assert_eq!(measured.mult, predicted.mult, "mult");
    assert_eq!(measured.add, predicted.add, "add");
    assert_eq!(measured.base_conv, predicted.base_conv, "base_conv");
    assert_eq!(measured.automorph, predicted.automorph, "automorph");
    assert_eq!(measured.rotations, predicted.rotations, "rotations");
    assert_eq!(measured.ct_mults, predicted.ct_mults, "ct_mults");
    assert_eq!(measured.pt_mults, predicted.pt_mults, "pt_mults");

    let reference = eval_plain(&w, &[input_slots()]);
    let got = ctx.decode(&ctx.decrypt(&out, &sk), SLOTS);
    for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
        assert!((g - r).abs() < 1e-3, "slot {i}: {g} vs {r}");
    }
}
