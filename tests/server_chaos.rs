//! Acceptance test for the multi-tenant job server: 8 tenants × 16 jobs
//! under seeded fault injection, with one poisoned tenant (bit flips,
//! simulated crashes, corrupted input blobs), random cancellations, a
//! deadline-zero job, and a deliberately undersized admission queue.
//!
//! The contract under test:
//! - every *surviving* job's output is limb-bit-identical to a serial,
//!   fault-free reference run;
//! - every failure is a structured outcome (a stable code + detail),
//!   never a panic and never `Internal`;
//! - clean tenants are completely unaffected by the poisoned tenant;
//! - the queue never holds more than its configured capacity, and every
//!   overload rejection is an `FheError::Overloaded` with a retry hint.
//!
//! This suite is also where ROADMAP item 1's synthetic-load goal lives:
//! the 128-job multi-tenant storm above plus the crash/recover rounds
//! below (randomized kill points, torn journal tails, watchdog stalls,
//! breaker quarantine) exercise the serving stack's concurrency under
//! hostile conditions; a dedicated thousands-of-jobs fairness soak
//! remains future headroom.

use std::sync::Arc;
use std::time::Duration;

use craterlake::boot::{BootstrapKeys, Bootstrapper};
use craterlake::ckks::faults::FaultPlan;
use craterlake::ckks::{CkksContext, CkksParams, FheError, GuardrailPolicy, KeySwitchKind};
use craterlake::runtime::{ExecutorConfig, PipelineExecutor, PipelineOp, Program, RunOutcome};
use craterlake::server::{
    FsyncPolicy, JobId, JobServer, JobSpec, OutcomeCode, ServerConfig, TenantSetup,
};
use rand::SeedableRng;

const NUM_TENANTS: usize = 8;
const JOBS_PER_TENANT: usize = 16;
/// Tenant 0 is poisoned: its jobs carry fault plans, and some of its
/// input blobs are corrupted in flight.
const POISONED: usize = 0;
/// Tenant 1's job 0 is submitted with a zero deadline.
const DEADLINE_TENANT: usize = 1;
/// Tenant 2 has a subset of its jobs cancelled right after submission.
const CANCEL_TENANT: usize = 2;
/// Tenant 7 runs a *different* parameter set (distinct fingerprint).
const FOREIGN_PARAMS: usize = 7;

fn strict_ctx(levels: usize) -> CkksContext {
    let params = CkksParams::builder()
        .ring_degree(64)
        .levels(levels)
        .special_limbs(levels)
        .limb_bits(45)
        .scale_bits(40)
        .build()
        .unwrap();
    CkksContext::new(params)
        .unwrap()
        .with_policy(GuardrailPolicy::Strict {
            min_budget_bits: -200.0,
        })
}

/// Four program shapes cycled by `(tenant + job)`; all need only
/// rotation steps {1, 2} and at most one rescale.
fn program_for(t: usize, j: usize) -> Program {
    match (t + j) % 4 {
        0 => Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::Rotate(1)),
        1 => Program::new()
            .then(PipelineOp::AddPlain(vec![0.1, -0.2]))
            .then(PipelineOp::Conjugate)
            .then(PipelineOp::Rotate(2)),
        2 => Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::AddPlain(vec![0.05]))
            .then(PipelineOp::Rotate(1)),
        _ => Program::new()
            .then(PipelineOp::Rotate(2))
            .then(PipelineOp::Conjugate)
            .then(PipelineOp::AddPlain(vec![0.3, 0.3, 0.3])),
    }
}

struct TenantFx {
    id: String,
    ctx: Arc<CkksContext>,
    key_blob: Vec<u8>,
    input_blob: Vec<u8>,
    /// Serial fault-free reference output per job, serialized.
    expected: Vec<Vec<u8>>,
}

fn build_tenant(t: usize) -> TenantFx {
    let levels = if t == FOREIGN_PARAMS { 5 } else { 4 };
    let ctx = Arc::new(strict_ctx(levels));
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7E4A + t as u64);
    let sk = ctx.keygen_sparse(8, &mut rng);
    let keys = BootstrapKeys::generate(&ctx, &sk, KeySwitchKind::Standard, &[1, 2], &mut rng);
    let pt = ctx.encode(
        &[0.4 - 0.01 * t as f64, -0.3, 0.2],
        ctx.default_scale(),
        ctx.max_level(),
    );
    let ct = ctx.encrypt(&pt, &sk, &mut rng);

    let mut exec = PipelineExecutor::new(
        &ctx,
        &keys,
        ExecutorConfig {
            checkpoint_every: 0,
            max_retries: 1,
            checkpoint_dir: None,
        },
    )
    .unwrap();
    let expected = (0..JOBS_PER_TENANT)
        .map(|j| match exec.run(&ct, &program_for(t, j)).unwrap() {
            RunOutcome::Completed(out) => ctx.serialize_ciphertext(&out),
            other => panic!("reference run t{t} j{j} did not complete: {other:?}"),
        })
        .collect();
    TenantFx {
        id: format!("tenant-{t}"),
        key_blob: keys.serialize(&ctx),
        input_blob: ctx.serialize_ciphertext(&ct),
        expected,
        ctx,
    }
}

fn flip_body_byte(blob: &[u8]) -> Vec<u8> {
    let mut out = blob.to_vec();
    // Past the 16-byte header, so the admission peek still passes and the
    // corruption is caught by the worker's deep parse.
    let pos = 16 + (out.len() - 16) / 2;
    out[pos] ^= 0x20;
    out
}

#[test]
fn chaos_multi_tenant_isolation_and_bit_exactness() {
    let tenants: Vec<TenantFx> = (0..NUM_TENANTS).map(build_tenant).collect();

    let root = std::env::temp_dir().join(format!("cl-server-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let queue_capacity = 24;
    let server = JobServer::start(ServerConfig {
        workers: 3,
        queue_capacity,
        tenant_queue_capacity: 6,
        checkpoint_root: root.clone(),
        checkpoint_every: 2,
        executor_retries: 6,
        tenant_retry_budget: 24,
        max_job_retries: 4,
        key_cache_bytes: 1 << 20,
        default_deadline: None,
        backoff_base_ms: 0,
        ..ServerConfig::default()
    })
    .unwrap();
    for fx in &tenants {
        server.register_tenant(&fx.id, Arc::clone(&fx.ctx)).unwrap();
    }

    // Cross-tenant fingerprint isolation: tenant-7's params differ, so a
    // blob serialized under tenant-0's context is refused at admission.
    {
        let fx0 = &tenants[0];
        let spec = JobSpec::new(
            &tenants[FOREIGN_PARAMS].id,
            program_for(0, 0).serialize(fx0.ctx.params_fingerprint()),
            fx0.input_blob.clone(),
            fx0.key_blob.clone(),
        );
        assert!(matches!(
            server.submit(spec),
            Err(FheError::ParamsMismatch { .. })
        ));
    }

    let mut handles: Vec<Vec<(JobId, Kind)>> = (0..NUM_TENANTS).map(|_| Vec::new()).collect();
    let mut overloads = 0u64;
    let mut max_queued = 0usize;

    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Clean,
        Faulted,
        CorruptBlob,
        DeadlineZero,
        Cancelled,
    }

    // Interleave submissions job-major so every tenant competes for the
    // undersized queue at the same time.
    for j in 0..JOBS_PER_TENANT {
        for (t, fx) in tenants.iter().enumerate() {
            let mut kind = Kind::Clean;
            let mut spec = JobSpec::new(
                &fx.id,
                program_for(t, j).serialize(fx.ctx.params_fingerprint()),
                fx.input_blob.clone(),
                fx.key_blob.clone(),
            );
            if t == POISONED {
                if j % 7 == 3 {
                    kind = Kind::CorruptBlob;
                    spec.input_blob = flip_body_byte(&fx.input_blob).into();
                } else {
                    kind = Kind::Faulted;
                    let seed = 0x5EED ^ (t as u64 * 1000 + j as u64);
                    let mut plan = FaultPlan::new(seed, 0.2);
                    if j % 5 == 0 {
                        plan = plan.with_kill_point(2);
                    }
                    spec.fault_plan = Some(plan);
                }
            }
            if t == DEADLINE_TENANT && j == 0 {
                kind = Kind::DeadlineZero;
                spec.deadline = Some(Duration::ZERO);
            }
            if t == CANCEL_TENANT && j % 5 == 4 {
                kind = Kind::Cancelled;
            }
            // Admission with explicit backpressure: shed submissions are
            // retried until a slot frees up. The queue bound holds the
            // whole time.
            let handle = loop {
                max_queued = max_queued.max(server.queued());
                match server.submit(spec.clone()) {
                    Ok(h) => break h,
                    Err(FheError::Overloaded { retry_after_ms, .. }) => {
                        overloads += 1;
                        assert!(retry_after_ms > 0, "retry hint must be actionable");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(other) => panic!("unexpected admission error: {other}"),
                }
            };
            if kind == Kind::Cancelled {
                handle.cancel();
            }
            handles[t].push((handle.id, kind));
        }
    }
    assert!(
        max_queued <= queue_capacity,
        "queue grew past its bound: {max_queued} > {queue_capacity}"
    );
    assert!(
        overloads > 0,
        "an undersized queue under 128 rapid submissions must shed at least once"
    );

    server.wait_idle();
    let reports: Vec<_> = tenants
        .iter()
        .map(|fx| server.tenant_report(&fx.id).unwrap())
        .collect();
    let outcomes = server.shutdown();
    assert_eq!(outcomes.len(), NUM_TENANTS * JOBS_PER_TENANT);

    let mut cancelled_seen = 0u64;
    for (t, fx) in tenants.iter().enumerate() {
        for (j, &(id, kind)) in handles[t].iter().enumerate() {
            let outcome = outcomes
                .iter()
                .find(|o| o.id == id)
                .unwrap_or_else(|| panic!("missing outcome for t{t} j{j}"));
            assert_eq!(outcome.tenant, fx.id);
            // Universal invariants: failures are structured, successes
            // are bit-exact.
            assert_ne!(
                outcome.code,
                OutcomeCode::Internal,
                "t{t} j{j}: unstructured failure: {}",
                outcome.detail
            );
            if outcome.is_ok() {
                assert_eq!(
                    outcome.output.as_deref(),
                    Some(fx.expected[j].as_slice()),
                    "t{t} j{j}: surviving output must be limb-bit-identical to the serial reference"
                );
            } else {
                assert!(outcome.output.is_none());
                assert!(!outcome.detail.is_empty(), "t{t} j{j}: failure needs detail");
            }
            match kind {
                Kind::Clean => assert!(
                    outcome.is_ok(),
                    "t{t} j{j}: clean job failed: {:?} {}",
                    outcome.code,
                    outcome.detail
                ),
                Kind::CorruptBlob => assert!(
                    matches!(
                        outcome.code,
                        OutcomeCode::IntegrityFailure | OutcomeCode::Malformed
                    ),
                    "t{t} j{j}: corrupt blob classified as {:?}",
                    outcome.code
                ),
                Kind::DeadlineZero => assert_eq!(
                    outcome.code,
                    OutcomeCode::DeadlineExceeded,
                    "a zero deadline can never be met"
                ),
                Kind::Cancelled => {
                    // The cancel races the workers: either it landed
                    // (Cancelled) or the job finished first (then it must
                    // still be bit-exact, which the block above checked).
                    if outcome.code == OutcomeCode::Cancelled {
                        cancelled_seen += 1;
                    } else {
                        assert!(outcome.is_ok(), "t{t} j{j}: {:?}", outcome.code);
                    }
                }
                Kind::Faulted => {
                    // A faulted job either converged (bit-exact, checked
                    // above) or died structured after its retries.
                    if !outcome.is_ok() {
                        assert!(
                            matches!(
                                outcome.code,
                                OutcomeCode::RetryBudgetExhausted
                                    | OutcomeCode::IntegrityFailure
                                    | OutcomeCode::GuardrailRejected
                            ),
                            "t{t} j{j}: fault surfaced as {:?}",
                            outcome.code
                        );
                    }
                }
            }
        }
    }
    // `cancelled_seen` is informational: with 3 busy workers and a full
    // queue most cancels land, but the test only requires that whichever
    // side wins the race, the result is structured/correct.
    let _ = cancelled_seen;

    // Per-tenant accounting and isolation.
    let poisoned_report = &reports[POISONED];
    assert!(
        poisoned_report.recovery.faults_injected > 0,
        "the fault plans must actually have fired"
    );
    assert!(
        poisoned_report.recovery.faults_detected > 0,
        "injected faults must be detected, not absorbed"
    );
    for (t, report) in reports.iter().enumerate() {
        assert_eq!(
            report.jobs_ok + report.jobs_failed,
            JOBS_PER_TENANT as u64,
            "t{t}: every job must be accounted exactly once"
        );
        if t != POISONED {
            assert_eq!(
                report.recovery.faults_injected, 0,
                "t{t}: fault injection must stay inside the poisoned tenant"
            );
            assert_eq!(report.key_cache.misses, 1, "t{t}: one key blob, parsed once");
        }
        if t != POISONED && t != DEADLINE_TENANT && t != CANCEL_TENANT {
            assert_eq!(
                report.jobs_failed, 0,
                "t{t}: clean tenant must be untouched by the chaos"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&root);
}

/// Fuzz-style untrusted-input sweep: truncations, bit flips, and foreign
/// fingerprints across all three blob kinds are rejected structurally —
/// at admission (header damage) or in the worker (payload damage) —
/// while an interleaved stream of good jobs completes bit-exactly.
#[test]
fn fuzzed_blobs_are_rejected_without_collateral_damage() {
    let fx = build_tenant(3);
    let root = std::env::temp_dir().join(format!("cl-server-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = JobServer::start(ServerConfig {
        workers: 2,
        queue_capacity: 256,
        tenant_queue_capacity: 256,
        checkpoint_root: root.clone(),
        backoff_base_ms: 0,
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_tenant(&fx.id, Arc::clone(&fx.ctx)).unwrap();

    let program_blob = program_for(3, 0).serialize(fx.ctx.params_fingerprint());
    let good = || {
        JobSpec::new(
            &fx.id,
            program_blob.clone(),
            fx.input_blob.clone(),
            fx.key_blob.clone(),
        )
    };

    // Background stream of good jobs, interleaved with the hostile ones.
    let mut good_ids = vec![server.submit(good()).unwrap().id];

    let blobs: [(&str, &[u8]); 3] = [
        ("program", &program_blob),
        ("input", &fx.input_blob),
        ("keys", &fx.key_blob),
    ];
    let mut hostile = 0u64;
    for (slot, blob) in blobs {
        // Truncations: a header-length prefix sweep plus payload cuts.
        let cuts = [0usize, 1, 7, 15, 16, 17, blob.len() / 2, blob.len() - 1];
        for &cut in cuts.iter().filter(|&&c| c < blob.len()) {
            let mut spec = good();
            let truncated = blob[..cut].to_vec();
            match slot {
                "program" => spec.program_blob = truncated.into(),
                "input" => spec.input_blob = truncated.into(),
                _ => spec.key_blob = truncated.into(),
            }
            submit_hostile(&server, spec, &mut hostile, &mut good_ids, &good);
        }
        // Bit flips spread across the blob, including header bytes.
        for i in 0..8 {
            let pos = (blob.len() - 1) * i / 7;
            let mut flipped = blob.to_vec();
            flipped[pos] ^= 1 << (i % 8);
            let mut spec = good();
            match slot {
                "program" => spec.program_blob = flipped.into(),
                "input" => spec.input_blob = flipped.into(),
                _ => spec.key_blob = flipped.into(),
            }
            submit_hostile(&server, spec, &mut hostile, &mut good_ids, &good);
        }
    }
    // Foreign fingerprint on the program blob.
    {
        let mut spec = good();
        spec.program_blob = program_for(3, 0).serialize(fx.ctx.params_fingerprint() ^ 0xFFFF).into();
        submit_hostile(&server, spec, &mut hostile, &mut good_ids, &good);
    }
    assert!(hostile >= 40, "sweep must cover a meaningful surface: {hostile}");

    let outcomes = server.shutdown();
    for id in good_ids {
        let outcome = outcomes.iter().find(|o| o.id == id).expect("good job outcome");
        assert!(
            outcome.is_ok(),
            "good job {id} collateral-damaged: {:?} {}",
            outcome.code,
            outcome.detail
        );
        assert_eq!(
            outcome.output.as_deref(),
            Some(fx.expected[0].as_slice()),
            "good job {id} must stay bit-exact amid hostile traffic"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Submits one hostile spec: it must be refused at admission or fail as a
/// structured non-`Ok`, non-`Internal` outcome — and never disturb the
/// good jobs interleaved after it.
fn submit_hostile(
    server: &JobServer,
    spec: JobSpec,
    hostile: &mut u64,
    good_ids: &mut Vec<JobId>,
    good: &impl Fn() -> JobSpec,
) {
    *hostile += 1;
    match server.submit(spec) {
        // Rejected at the front door: structured error, nothing queued.
        Err(
            FheError::Serialization { .. }
            | FheError::ChecksumMismatch { .. }
            | FheError::ParamsMismatch { .. },
        ) => {}
        Err(other) => panic!("hostile blob rejected with unexpected class: {other}"),
        // Admitted: the deep parse in the worker must fail it cleanly.
        Ok(handle) => {
            let outcome = server.wait(handle.id);
            assert!(
                matches!(
                    outcome.code,
                    OutcomeCode::Malformed
                        | OutcomeCode::IntegrityFailure
                        | OutcomeCode::ParamsMismatch
                ),
                "hostile blob produced {:?}: {}",
                outcome.code,
                outcome.detail
            );
        }
    }
    // Interleave a fresh good job behind every hostile one.
    good_ids.push(server.submit(good()).unwrap().id);
}

// ---------------------------------------------------------------------------
// Crash durability: kill/recover, watchdog, circuit breaker, checkpoint GC.
// ---------------------------------------------------------------------------

/// A tenant that hosts a bootstrapper: deep parameters, a bootstrapped
/// program, and a serial fault-free reference output.
struct BootFx {
    id: String,
    ctx: Arc<CkksContext>,
    booter: Arc<Bootstrapper>,
    key_blob: Vec<u8>,
    input_blob: Vec<u8>,
    programs: Vec<Program>,
    expected: Vec<Vec<u8>>,
}

fn build_boot_tenant() -> BootFx {
    let params = CkksParams::builder()
        .ring_degree(64)
        .levels(20)
        .special_limbs(20)
        .limb_bits(45)
        .scale_bits(45)
        .build()
        .unwrap();
    let ctx = Arc::new(CkksContext::new(params).unwrap().with_policy(
        GuardrailPolicy::Strict {
            min_budget_bits: -5000.0,
        },
    ));
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB007);
    let sk = ctx.keygen_sparse(8, &mut rng);
    let booter = Arc::new(Bootstrapper::new(&ctx, 8));
    let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Standard, &mut rng);
    let pt = ctx.encode(&[0.9, -0.8, 0.7], ctx.default_scale(), ctx.max_level());
    let ct = ctx.encrypt(&pt, &sk, &mut rng);

    // Two program shapes with the bootstrap at different depths, so a
    // randomized kill can land before, inside, or after the bootstrap.
    let mut p0 = Program::new();
    for _ in 0..4 {
        p0 = p0.then(PipelineOp::Square).then(PipelineOp::Rescale);
    }
    p0 = p0.then(PipelineOp::Bootstrap).then(PipelineOp::Square).then(PipelineOp::Rescale);
    let mut p1 = Program::new()
        .then(PipelineOp::Square)
        .then(PipelineOp::Rescale)
        .then(PipelineOp::Bootstrap);
    for _ in 0..2 {
        p1 = p1.then(PipelineOp::Square).then(PipelineOp::Rescale);
    }
    let programs = vec![p0, p1];

    let mut exec = PipelineExecutor::new(
        &ctx,
        &keys,
        ExecutorConfig {
            checkpoint_every: 0,
            max_retries: 0,
            checkpoint_dir: None,
        },
    )
    .unwrap()
    .with_bootstrapper(&booter);
    let expected = programs
        .iter()
        .map(|p| match exec.run(&ct, p).unwrap() {
            RunOutcome::Completed(out) => ctx.serialize_ciphertext(&out),
            other => panic!("boot reference run did not complete: {other:?}"),
        })
        .collect();
    BootFx {
        id: "tenant-boot".to_string(),
        key_blob: keys.serialize(&ctx),
        input_blob: ctx.serialize_ciphertext(&ct),
        programs,
        expected,
        booter,
        ctx,
    }
}

fn restart_config(root: &std::path::Path) -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 64,
        tenant_queue_capacity: 64,
        checkpoint_root: root.to_path_buf(),
        checkpoint_every: 1,
        backoff_base_ms: 0,
        // Every record durable before the call returns: the acknowledged-
        // implies-recoverable contract holds at any kill point.
        journal_fsync: FsyncPolicy::Always,
        ..ServerConfig::default()
    }
}

/// Appends a partial garbage record to the newest journal generation —
/// the on-disk state of a crash that died mid-append.
fn tear_journal_tail(root: &std::path::Path) {
    let dir = root.join("journal");
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "wal"))
        .max()
        .expect("a journal generation must exist");
    let mut bytes = std::fs::read(&newest).unwrap();
    // A record header whose promised body never made it to disk.
    bytes.extend_from_slice(b"CLJR\xff\x00\x00\x00torn");
    std::fs::write(&newest, &bytes).unwrap();
}

/// The tentpole acceptance test: a multi-tenant workload (two plain
/// tenants plus one hosting a bootstrapper) is killed at randomized
/// points — before dispatch, mid-plain-pipeline, mid-bootstrap — and
/// once with a torn journal tail. Recovery must give *every*
/// acknowledged job an outcome limb-bit-identical to an uninterrupted
/// run, with exact accounting and no leaked checkpoint directories.
#[test]
fn killed_server_recovers_every_acknowledged_job_bit_identically() {
    let plain: Vec<TenantFx> = vec![build_tenant(3), build_tenant(4)];
    let boot = build_boot_tenant();
    const PLAIN_JOBS: usize = 4;

    // Kill points: fixed delays land before dispatch (0ms) or mid-flight
    // (bootstraps at these parameters straddle the longer ones); `None`
    // waits until at least two jobs have durably completed, so the sweep
    // always exercises the replayed-outcome path regardless of how slow
    // the build is.
    let kill_delays_ms = [Some(0u64), Some(8), Some(25), None];
    let torn_iteration = 2;
    let mut total_resumed = 0u64;
    let mut total_complete = 0u64;

    for (iter, &delay) in kill_delays_ms.iter().enumerate() {
        let root = std::env::temp_dir().join(format!(
            "cl-server-restart-{}-{iter}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let server = JobServer::start(restart_config(&root)).unwrap();
        for fx in &plain {
            server.register_tenant(&fx.id, Arc::clone(&fx.ctx)).unwrap();
        }
        server
            .register_tenant_with_bootstrapper(
                &boot.id,
                Arc::clone(&boot.ctx),
                Arc::clone(&boot.booter),
            )
            .unwrap();

        // (id, tenant index: 0/1 plain, 2 boot, job index)
        let mut submitted: Vec<(JobId, usize, usize)> = Vec::new();
        for (pi, program) in boot.programs.iter().enumerate() {
            let spec = JobSpec::new(
                &boot.id,
                program.serialize(boot.ctx.params_fingerprint()),
                boot.input_blob.clone(),
                boot.key_blob.clone(),
            );
            submitted.push((server.submit(spec).unwrap().id, 2, pi));
        }
        for (t, fx) in plain.iter().enumerate() {
            for j in 0..PLAIN_JOBS {
                let spec = JobSpec::new(
                    &fx.id,
                    program_for(t + 3, j).serialize(fx.ctx.params_fingerprint()),
                    fx.input_blob.clone(),
                    fx.key_blob.clone(),
                );
                submitted.push((server.submit(spec).unwrap().id, t, j));
            }
        }
        let num_jobs = submitted.len() as u64;

        match delay {
            Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
            None => {
                // Outcomes are journaled (and durable) before they are
                // published, so two published outcomes guarantee two
                // replayable terminal records.
                while server.pending() > submitted.len() - 2 {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        server.kill();
        if iter == torn_iteration {
            tear_journal_tail(&root);
        }

        let setups = vec![
            TenantSetup {
                id: plain[0].id.clone(),
                ctx: Arc::clone(&plain[0].ctx),
                bootstrapper: None,
            },
            TenantSetup {
                id: plain[1].id.clone(),
                ctx: Arc::clone(&plain[1].ctx),
                bootstrapper: None,
            },
            TenantSetup {
                id: boot.id.clone(),
                ctx: Arc::clone(&boot.ctx),
                bootstrapper: Some(Arc::clone(&boot.booter)),
            },
        ];
        let (server, report) = JobServer::recover(restart_config(&root), &setups).unwrap();

        // Accounting: every acknowledged job is either already complete
        // (outcome reconstructed from the journal) or re-admitted; none
        // vanish, none are orphaned, and the torn tail is absorbed as
        // skipped — never an error.
        assert_eq!(
            report.jobs_resumed + report.jobs_already_complete,
            num_jobs,
            "iter {iter}: every acknowledged job must be accounted: {report:?}"
        );
        assert_eq!(report.jobs_orphaned, 0, "iter {iter}: {report:?}");
        if iter == torn_iteration {
            assert!(
                report.records_skipped >= 1,
                "iter {iter}: the torn tail must be counted: {report:?}"
            );
        } else {
            assert_eq!(report.records_skipped, 0, "iter {iter}: {report:?}");
        }
        total_resumed += report.jobs_resumed;
        total_complete += report.jobs_already_complete;

        for &(id, t, j) in &submitted {
            let outcome = server.wait(id);
            let expected = match t {
                2 => &boot.expected[j],
                _ => &plain[t].expected[j],
            };
            assert_eq!(
                outcome.code,
                OutcomeCode::Ok,
                "iter {iter}, t{t} j{j}: recovered job failed: {}",
                outcome.detail
            );
            assert_eq!(
                outcome.output.as_deref(),
                Some(expected.as_slice()),
                "iter {iter}, t{t} j{j}: recovered output must be \
                 limb-bit-identical to an uninterrupted run"
            );
        }
        server.shutdown();

        // Checkpoint GC: after a graceful shutdown no per-job directory
        // survives, only the journal and the tenant roots.
        for fx_id in [&plain[0].id, &plain[1].id, &boot.id] {
            let tenant_root = root.join(fx_id);
            let leftovers: Vec<_> = std::fs::read_dir(&tenant_root)
                .map(|rd| {
                    rd.flatten()
                        .filter(|e| e.file_name().to_string_lossy().starts_with("job-"))
                        .collect()
                })
                .unwrap_or_default();
            assert!(
                leftovers.is_empty(),
                "iter {iter}: leaked checkpoint dirs for {fx_id}: {leftovers:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }
    // Across the sweep, the kill must have caught jobs in both states:
    // some mid-flight (resumed from checkpoints) and — at the longer
    // delays — some already durably complete.
    assert!(total_resumed > 0, "no kill point caught a job mid-flight");
    assert!(
        total_complete > 0,
        "no kill point let any job finish first; delays are miscalibrated"
    );
}

/// Watchdog acceptance: a job whose fault plan stalls one micro-op far
/// past the stall budget is detected by the supervisor, aborted at the
/// next heartbeat check, and re-dispatched from its checkpoint — still
/// converging bit-identically.
#[test]
fn watchdog_detects_stalled_job_and_redispatches_it() {
    let fx = build_tenant(5);
    let root = std::env::temp_dir().join(format!("cl-server-stall-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = JobServer::start(ServerConfig {
        workers: 1,
        checkpoint_root: root.clone(),
        checkpoint_every: 1,
        backoff_base_ms: 0,
        max_job_retries: 3,
        stall_budget: Duration::from_millis(60),
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_tenant(&fx.id, Arc::clone(&fx.ctx)).unwrap();

    // program_for(5, 1) has four micro-ops; the stall must *not* hit the
    // last one — the stall verdict only surfaces at the next micro-op's
    // heartbeat check, so a job that hangs on its final op just finishes.
    let mut spec = JobSpec::new(
        &fx.id,
        program_for(5, 1).serialize(fx.ctx.params_fingerprint()),
        fx.input_blob.clone(),
        fx.key_blob.clone(),
    );
    // No bit flips — only a 400ms hang at the second micro-op, nearly 7x
    // the stall budget, so the supervisor (ticking at budget/4) cannot
    // miss it even on a slow machine.
    spec.fault_plan = Some(FaultPlan::new(0x57A11, 0.0).with_stall_point(1, 400));
    let handle = server.submit(spec).unwrap();
    let outcome = server.wait(handle.id);

    assert_eq!(
        outcome.code,
        OutcomeCode::Ok,
        "stalled job must be re-dispatched to completion: {}",
        outcome.detail
    );
    assert_eq!(
        outcome.output.as_deref(),
        Some(fx.expected[1].as_slice()),
        "re-dispatched output must be limb-bit-identical"
    );
    assert!(
        outcome.retries >= 1,
        "the stall verdict must consume a server-level retry"
    );
    let report = server.tenant_report(&fx.id).unwrap();
    assert!(
        report.watchdog_stalls >= 1,
        "the watchdog must have charged the stall: {report:?}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Circuit-breaker acceptance: a tenant whose jobs keep failing with
/// integrity faults is quarantined at admission after the configured
/// threshold, while a clean tenant on the same server is untouched.
#[test]
fn poisoned_tenant_trips_breaker_without_collateral_damage() {
    let bad = build_tenant(5);
    let good = build_tenant(6);
    let root = std::env::temp_dir().join(format!("cl-server-breaker-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = JobServer::start(ServerConfig {
        workers: 1,
        checkpoint_root: root.clone(),
        backoff_base_ms: 0,
        executor_retries: 0,
        max_job_retries: 0,
        breaker_threshold: 2,
        // Long enough that the test never races the half-open transition.
        breaker_backoff_ms: 60_000,
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_tenant(&bad.id, Arc::clone(&bad.ctx)).unwrap();
    server.register_tenant(&good.id, Arc::clone(&good.ctx)).unwrap();

    // A flipped limb-payload byte: passes the admission header peek,
    // fails the worker's checksummed deep parse as an integrity fault.
    let corrupt_input = {
        let mut blob = bad.input_blob.clone();
        let pos = blob.len() - 16;
        blob[pos] ^= 1 << 3;
        blob
    };
    let corrupt_spec = || {
        let mut spec = JobSpec::new(
            &bad.id,
            program_for(5, 0).serialize(bad.ctx.params_fingerprint()),
            bad.input_blob.clone(),
            bad.key_blob.clone(),
        );
        spec.input_blob = corrupt_input.clone().into();
        spec
    };

    // Two consecutive breaker-class failures reach the threshold.
    for i in 0..2 {
        let outcome = server.wait(server.submit(corrupt_spec()).unwrap().id);
        assert_eq!(
            outcome.code,
            OutcomeCode::IntegrityFailure,
            "poison job {i} must fail as an integrity fault: {}",
            outcome.detail
        );
    }
    // The third submission is refused at the door.
    match server.submit(corrupt_spec()) {
        Err(FheError::TenantQuarantined { retry_after_ms, .. }) => {
            assert!(retry_after_ms > 0, "quarantine needs an actionable hint");
        }
        other => panic!("tripped breaker must quarantine, got {other:?}"),
    }

    // The clean tenant is completely unaffected — before and after.
    for j in 0..2 {
        let spec = JobSpec::new(
            &good.id,
            program_for(6, j).serialize(good.ctx.params_fingerprint()),
            good.input_blob.clone(),
            good.key_blob.clone(),
        );
        let outcome = server.wait(server.submit(spec).unwrap().id);
        assert!(outcome.is_ok(), "clean tenant hit: {}", outcome.detail);
        assert_eq!(outcome.output.as_deref(), Some(good.expected[j].as_slice()));
    }

    let bad_report = server.tenant_report(&bad.id).unwrap();
    assert_eq!(bad_report.breaker.state, "open", "{bad_report:?}");
    assert_eq!(bad_report.breaker.trips, 1);
    assert_eq!(bad_report.breaker_rejections, 1);
    let good_report = server.tenant_report(&good.id).unwrap();
    assert_eq!(good_report.breaker.state, "closed");
    assert_eq!(good_report.breaker_rejections, 0);
    assert_eq!(good_report.jobs_failed, 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Checkpoint GC regression: `recover()` sweeps `job-<id>` directories
/// that no longer correspond to a live job, and `shutdown()` leaves no
/// per-job directories behind.
#[test]
fn recover_sweeps_orphaned_checkpoint_dirs() {
    let fx = build_tenant(5);
    let root = std::env::temp_dir().join(format!("cl-server-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let server = JobServer::start(restart_config(&root)).unwrap();
    server.register_tenant(&fx.id, Arc::clone(&fx.ctx)).unwrap();
    let ids: Vec<JobId> = (0..2)
        .map(|j| {
            let spec = JobSpec::new(
                &fx.id,
                program_for(5, j).serialize(fx.ctx.params_fingerprint()),
                fx.input_blob.clone(),
                fx.key_blob.clone(),
            );
            server.submit(spec).unwrap().id
        })
        .collect();
    for &id in &ids {
        assert!(server.wait(id).is_ok());
    }
    server.kill();

    // Debris from a hypothetical previous incarnation: directories for
    // jobs the journal knows nothing about.
    let tenant_root = root.join(&fx.id);
    for orphan in [777u64, 778] {
        std::fs::create_dir_all(tenant_root.join(format!("job-{orphan}"))).unwrap();
    }

    let setups = [TenantSetup {
        id: fx.id.clone(),
        ctx: Arc::clone(&fx.ctx),
        bootstrapper: None,
    }];
    let (server, report) = JobServer::recover(restart_config(&root), &setups).unwrap();
    assert_eq!(report.jobs_already_complete, 2, "{report:?}");
    assert_eq!(report.jobs_resumed, 0, "{report:?}");
    assert!(
        report.checkpoint_dirs_swept >= 2,
        "both orphan dirs must be collected: {report:?}"
    );
    assert!(!tenant_root.join("job-777").exists());
    assert!(!tenant_root.join("job-778").exists());

    // Replayed outcomes carry the original payloads bit-identically.
    for (j, &id) in ids.iter().enumerate() {
        let outcome = server.outcome(id).expect("replayed outcome");
        assert_eq!(outcome.output.as_deref(), Some(fx.expected[j].as_slice()));
    }
    server.shutdown();
    let leftovers = std::fs::read_dir(&tenant_root)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("job-"))
        .count();
    assert_eq!(leftovers, 0, "shutdown must leave no per-job dirs");
    let _ = std::fs::remove_dir_all(&root);
}
