//! Acceptance test for the multi-tenant job server: 8 tenants × 16 jobs
//! under seeded fault injection, with one poisoned tenant (bit flips,
//! simulated crashes, corrupted input blobs), random cancellations, a
//! deadline-zero job, and a deliberately undersized admission queue.
//!
//! The contract under test:
//! - every *surviving* job's output is limb-bit-identical to a serial,
//!   fault-free reference run;
//! - every failure is a structured outcome (a stable code + detail),
//!   never a panic and never `Internal`;
//! - clean tenants are completely unaffected by the poisoned tenant;
//! - the queue never holds more than its configured capacity, and every
//!   overload rejection is an `FheError::Overloaded` with a retry hint.

use std::sync::Arc;
use std::time::Duration;

use craterlake::boot::BootstrapKeys;
use craterlake::ckks::faults::FaultPlan;
use craterlake::ckks::{CkksContext, CkksParams, FheError, GuardrailPolicy, KeySwitchKind};
use craterlake::runtime::{ExecutorConfig, PipelineExecutor, PipelineOp, Program, RunOutcome};
use craterlake::server::{JobId, JobServer, JobSpec, OutcomeCode, ServerConfig};
use rand::SeedableRng;

const NUM_TENANTS: usize = 8;
const JOBS_PER_TENANT: usize = 16;
/// Tenant 0 is poisoned: its jobs carry fault plans, and some of its
/// input blobs are corrupted in flight.
const POISONED: usize = 0;
/// Tenant 1's job 0 is submitted with a zero deadline.
const DEADLINE_TENANT: usize = 1;
/// Tenant 2 has a subset of its jobs cancelled right after submission.
const CANCEL_TENANT: usize = 2;
/// Tenant 7 runs a *different* parameter set (distinct fingerprint).
const FOREIGN_PARAMS: usize = 7;

fn strict_ctx(levels: usize) -> CkksContext {
    let params = CkksParams::builder()
        .ring_degree(64)
        .levels(levels)
        .special_limbs(levels)
        .limb_bits(45)
        .scale_bits(40)
        .build()
        .unwrap();
    CkksContext::new(params)
        .unwrap()
        .with_policy(GuardrailPolicy::Strict {
            min_budget_bits: -200.0,
        })
}

/// Four program shapes cycled by `(tenant + job)`; all need only
/// rotation steps {1, 2} and at most one rescale.
fn program_for(t: usize, j: usize) -> Program {
    match (t + j) % 4 {
        0 => Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::Rotate(1)),
        1 => Program::new()
            .then(PipelineOp::AddPlain(vec![0.1, -0.2]))
            .then(PipelineOp::Conjugate)
            .then(PipelineOp::Rotate(2)),
        2 => Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::AddPlain(vec![0.05]))
            .then(PipelineOp::Rotate(1)),
        _ => Program::new()
            .then(PipelineOp::Rotate(2))
            .then(PipelineOp::Conjugate)
            .then(PipelineOp::AddPlain(vec![0.3, 0.3, 0.3])),
    }
}

struct TenantFx {
    id: String,
    ctx: Arc<CkksContext>,
    key_blob: Vec<u8>,
    input_blob: Vec<u8>,
    /// Serial fault-free reference output per job, serialized.
    expected: Vec<Vec<u8>>,
}

fn build_tenant(t: usize) -> TenantFx {
    let levels = if t == FOREIGN_PARAMS { 5 } else { 4 };
    let ctx = Arc::new(strict_ctx(levels));
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7E4A + t as u64);
    let sk = ctx.keygen_sparse(8, &mut rng);
    let keys = BootstrapKeys::generate(&ctx, &sk, KeySwitchKind::Standard, &[1, 2], &mut rng);
    let pt = ctx.encode(
        &[0.4 - 0.01 * t as f64, -0.3, 0.2],
        ctx.default_scale(),
        ctx.max_level(),
    );
    let ct = ctx.encrypt(&pt, &sk, &mut rng);

    let mut exec = PipelineExecutor::new(
        &ctx,
        &keys,
        ExecutorConfig {
            checkpoint_every: 0,
            max_retries: 1,
            checkpoint_dir: None,
        },
    )
    .unwrap();
    let expected = (0..JOBS_PER_TENANT)
        .map(|j| match exec.run(&ct, &program_for(t, j)).unwrap() {
            RunOutcome::Completed(out) => ctx.serialize_ciphertext(&out),
            other => panic!("reference run t{t} j{j} did not complete: {other:?}"),
        })
        .collect();
    TenantFx {
        id: format!("tenant-{t}"),
        key_blob: keys.serialize(&ctx),
        input_blob: ctx.serialize_ciphertext(&ct),
        expected,
        ctx,
    }
}

fn flip_body_byte(blob: &[u8]) -> Vec<u8> {
    let mut out = blob.to_vec();
    // Past the 16-byte header, so the admission peek still passes and the
    // corruption is caught by the worker's deep parse.
    let pos = 16 + (out.len() - 16) / 2;
    out[pos] ^= 0x20;
    out
}

#[test]
fn chaos_multi_tenant_isolation_and_bit_exactness() {
    let tenants: Vec<TenantFx> = (0..NUM_TENANTS).map(build_tenant).collect();

    let root = std::env::temp_dir().join(format!("cl-server-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let queue_capacity = 24;
    let server = JobServer::start(ServerConfig {
        workers: 3,
        queue_capacity,
        tenant_queue_capacity: 6,
        checkpoint_root: root.clone(),
        checkpoint_every: 2,
        executor_retries: 6,
        tenant_retry_budget: 24,
        max_job_retries: 4,
        key_cache_bytes: 1 << 20,
        default_deadline: None,
        backoff_base_ms: 0,
    })
    .unwrap();
    for fx in &tenants {
        server.register_tenant(&fx.id, Arc::clone(&fx.ctx)).unwrap();
    }

    // Cross-tenant fingerprint isolation: tenant-7's params differ, so a
    // blob serialized under tenant-0's context is refused at admission.
    {
        let fx0 = &tenants[0];
        let spec = JobSpec::new(
            &tenants[FOREIGN_PARAMS].id,
            program_for(0, 0).serialize(fx0.ctx.params_fingerprint()),
            fx0.input_blob.clone(),
            fx0.key_blob.clone(),
        );
        assert!(matches!(
            server.submit(spec),
            Err(FheError::ParamsMismatch { .. })
        ));
    }

    let mut handles: Vec<Vec<(JobId, Kind)>> = (0..NUM_TENANTS).map(|_| Vec::new()).collect();
    let mut overloads = 0u64;
    let mut max_queued = 0usize;

    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Clean,
        Faulted,
        CorruptBlob,
        DeadlineZero,
        Cancelled,
    }

    // Interleave submissions job-major so every tenant competes for the
    // undersized queue at the same time.
    for j in 0..JOBS_PER_TENANT {
        for (t, fx) in tenants.iter().enumerate() {
            let mut kind = Kind::Clean;
            let mut spec = JobSpec::new(
                &fx.id,
                program_for(t, j).serialize(fx.ctx.params_fingerprint()),
                fx.input_blob.clone(),
                fx.key_blob.clone(),
            );
            if t == POISONED {
                if j % 7 == 3 {
                    kind = Kind::CorruptBlob;
                    spec.input_blob = flip_body_byte(&fx.input_blob);
                } else {
                    kind = Kind::Faulted;
                    let seed = 0x5EED ^ (t as u64 * 1000 + j as u64);
                    let mut plan = FaultPlan::new(seed, 0.2);
                    if j % 5 == 0 {
                        plan = plan.with_kill_point(2);
                    }
                    spec.fault_plan = Some(plan);
                }
            }
            if t == DEADLINE_TENANT && j == 0 {
                kind = Kind::DeadlineZero;
                spec.deadline = Some(Duration::ZERO);
            }
            if t == CANCEL_TENANT && j % 5 == 4 {
                kind = Kind::Cancelled;
            }
            // Admission with explicit backpressure: shed submissions are
            // retried until a slot frees up. The queue bound holds the
            // whole time.
            let handle = loop {
                max_queued = max_queued.max(server.queued());
                match server.submit(spec.clone()) {
                    Ok(h) => break h,
                    Err(FheError::Overloaded { retry_after_ms, .. }) => {
                        overloads += 1;
                        assert!(retry_after_ms > 0, "retry hint must be actionable");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(other) => panic!("unexpected admission error: {other}"),
                }
            };
            if kind == Kind::Cancelled {
                handle.cancel();
            }
            handles[t].push((handle.id, kind));
        }
    }
    assert!(
        max_queued <= queue_capacity,
        "queue grew past its bound: {max_queued} > {queue_capacity}"
    );
    assert!(
        overloads > 0,
        "an undersized queue under 128 rapid submissions must shed at least once"
    );

    server.wait_idle();
    let reports: Vec<_> = tenants
        .iter()
        .map(|fx| server.tenant_report(&fx.id).unwrap())
        .collect();
    let outcomes = server.shutdown();
    assert_eq!(outcomes.len(), NUM_TENANTS * JOBS_PER_TENANT);

    let mut cancelled_seen = 0u64;
    for (t, fx) in tenants.iter().enumerate() {
        for (j, &(id, kind)) in handles[t].iter().enumerate() {
            let outcome = outcomes
                .iter()
                .find(|o| o.id == id)
                .unwrap_or_else(|| panic!("missing outcome for t{t} j{j}"));
            assert_eq!(outcome.tenant, fx.id);
            // Universal invariants: failures are structured, successes
            // are bit-exact.
            assert_ne!(
                outcome.code,
                OutcomeCode::Internal,
                "t{t} j{j}: unstructured failure: {}",
                outcome.detail
            );
            if outcome.is_ok() {
                assert_eq!(
                    outcome.output.as_deref(),
                    Some(fx.expected[j].as_slice()),
                    "t{t} j{j}: surviving output must be limb-bit-identical to the serial reference"
                );
            } else {
                assert!(outcome.output.is_none());
                assert!(!outcome.detail.is_empty(), "t{t} j{j}: failure needs detail");
            }
            match kind {
                Kind::Clean => assert!(
                    outcome.is_ok(),
                    "t{t} j{j}: clean job failed: {:?} {}",
                    outcome.code,
                    outcome.detail
                ),
                Kind::CorruptBlob => assert!(
                    matches!(
                        outcome.code,
                        OutcomeCode::IntegrityFailure | OutcomeCode::Malformed
                    ),
                    "t{t} j{j}: corrupt blob classified as {:?}",
                    outcome.code
                ),
                Kind::DeadlineZero => assert_eq!(
                    outcome.code,
                    OutcomeCode::DeadlineExceeded,
                    "a zero deadline can never be met"
                ),
                Kind::Cancelled => {
                    // The cancel races the workers: either it landed
                    // (Cancelled) or the job finished first (then it must
                    // still be bit-exact, which the block above checked).
                    if outcome.code == OutcomeCode::Cancelled {
                        cancelled_seen += 1;
                    } else {
                        assert!(outcome.is_ok(), "t{t} j{j}: {:?}", outcome.code);
                    }
                }
                Kind::Faulted => {
                    // A faulted job either converged (bit-exact, checked
                    // above) or died structured after its retries.
                    if !outcome.is_ok() {
                        assert!(
                            matches!(
                                outcome.code,
                                OutcomeCode::RetryBudgetExhausted
                                    | OutcomeCode::IntegrityFailure
                                    | OutcomeCode::GuardrailRejected
                            ),
                            "t{t} j{j}: fault surfaced as {:?}",
                            outcome.code
                        );
                    }
                }
            }
        }
    }
    // `cancelled_seen` is informational: with 3 busy workers and a full
    // queue most cancels land, but the test only requires that whichever
    // side wins the race, the result is structured/correct.
    let _ = cancelled_seen;

    // Per-tenant accounting and isolation.
    let poisoned_report = &reports[POISONED];
    assert!(
        poisoned_report.recovery.faults_injected > 0,
        "the fault plans must actually have fired"
    );
    assert!(
        poisoned_report.recovery.faults_detected > 0,
        "injected faults must be detected, not absorbed"
    );
    for (t, report) in reports.iter().enumerate() {
        assert_eq!(
            report.jobs_ok + report.jobs_failed,
            JOBS_PER_TENANT as u64,
            "t{t}: every job must be accounted exactly once"
        );
        if t != POISONED {
            assert_eq!(
                report.recovery.faults_injected, 0,
                "t{t}: fault injection must stay inside the poisoned tenant"
            );
            assert_eq!(report.key_cache.misses, 1, "t{t}: one key blob, parsed once");
        }
        if t != POISONED && t != DEADLINE_TENANT && t != CANCEL_TENANT {
            assert_eq!(
                report.jobs_failed, 0,
                "t{t}: clean tenant must be untouched by the chaos"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&root);
}

/// Fuzz-style untrusted-input sweep: truncations, bit flips, and foreign
/// fingerprints across all three blob kinds are rejected structurally —
/// at admission (header damage) or in the worker (payload damage) —
/// while an interleaved stream of good jobs completes bit-exactly.
#[test]
fn fuzzed_blobs_are_rejected_without_collateral_damage() {
    let fx = build_tenant(3);
    let root = std::env::temp_dir().join(format!("cl-server-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = JobServer::start(ServerConfig {
        workers: 2,
        queue_capacity: 256,
        tenant_queue_capacity: 256,
        checkpoint_root: root.clone(),
        backoff_base_ms: 0,
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_tenant(&fx.id, Arc::clone(&fx.ctx)).unwrap();

    let program_blob = program_for(3, 0).serialize(fx.ctx.params_fingerprint());
    let good = || {
        JobSpec::new(
            &fx.id,
            program_blob.clone(),
            fx.input_blob.clone(),
            fx.key_blob.clone(),
        )
    };

    // Background stream of good jobs, interleaved with the hostile ones.
    let mut good_ids = vec![server.submit(good()).unwrap().id];

    let blobs: [(&str, &[u8]); 3] = [
        ("program", &program_blob),
        ("input", &fx.input_blob),
        ("keys", &fx.key_blob),
    ];
    let mut hostile = 0u64;
    for (slot, blob) in blobs {
        // Truncations: a header-length prefix sweep plus payload cuts.
        let cuts = [0usize, 1, 7, 15, 16, 17, blob.len() / 2, blob.len() - 1];
        for &cut in cuts.iter().filter(|&&c| c < blob.len()) {
            let mut spec = good();
            let truncated = blob[..cut].to_vec();
            match slot {
                "program" => spec.program_blob = truncated,
                "input" => spec.input_blob = truncated,
                _ => spec.key_blob = truncated,
            }
            submit_hostile(&server, spec, &mut hostile, &mut good_ids, &good);
        }
        // Bit flips spread across the blob, including header bytes.
        for i in 0..8 {
            let pos = (blob.len() - 1) * i / 7;
            let mut flipped = blob.to_vec();
            flipped[pos] ^= 1 << (i % 8);
            let mut spec = good();
            match slot {
                "program" => spec.program_blob = flipped,
                "input" => spec.input_blob = flipped,
                _ => spec.key_blob = flipped,
            }
            submit_hostile(&server, spec, &mut hostile, &mut good_ids, &good);
        }
    }
    // Foreign fingerprint on the program blob.
    {
        let mut spec = good();
        spec.program_blob = program_for(3, 0).serialize(fx.ctx.params_fingerprint() ^ 0xFFFF);
        submit_hostile(&server, spec, &mut hostile, &mut good_ids, &good);
    }
    assert!(hostile >= 40, "sweep must cover a meaningful surface: {hostile}");

    let outcomes = server.shutdown();
    for id in good_ids {
        let outcome = outcomes.iter().find(|o| o.id == id).expect("good job outcome");
        assert!(
            outcome.is_ok(),
            "good job {id} collateral-damaged: {:?} {}",
            outcome.code,
            outcome.detail
        );
        assert_eq!(
            outcome.output.as_deref(),
            Some(fx.expected[0].as_slice()),
            "good job {id} must stay bit-exact amid hostile traffic"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Submits one hostile spec: it must be refused at admission or fail as a
/// structured non-`Ok`, non-`Internal` outcome — and never disturb the
/// good jobs interleaved after it.
fn submit_hostile(
    server: &JobServer,
    spec: JobSpec,
    hostile: &mut u64,
    good_ids: &mut Vec<JobId>,
    good: &impl Fn() -> JobSpec,
) {
    *hostile += 1;
    match server.submit(spec) {
        // Rejected at the front door: structured error, nothing queued.
        Err(
            FheError::Serialization { .. }
            | FheError::ChecksumMismatch { .. }
            | FheError::ParamsMismatch { .. },
        ) => {}
        Err(other) => panic!("hostile blob rejected with unexpected class: {other}"),
        // Admitted: the deep parse in the worker must fail it cleanly.
        Ok(handle) => {
            let outcome = server.wait(handle.id);
            assert!(
                matches!(
                    outcome.code,
                    OutcomeCode::Malformed
                        | OutcomeCode::IntegrityFailure
                        | OutcomeCode::ParamsMismatch
                ),
                "hostile blob produced {:?}: {}",
                outcome.code,
                outcome.detail
            );
        }
    }
    // Interleave a fresh good job behind every hostile one.
    good_ids.push(server.submit(good()).unwrap().id);
}
