//! Workspace-level integration tests for the fallible evaluation API,
//! the runtime guardrail policies, and the fault-injection harness —
//! exercised through the public `cl-ckks` surface (with the `faults`
//! feature) exactly as an external consumer would.

use cl_ckks::{
    faults, CkksContext, CkksParams, FheError, GuardrailPolicy, KeySwitchKind, SecretKey,
};
use rand::SeedableRng;

fn setup() -> (CkksContext, SecretKey, rand::rngs::StdRng) {
    let params = CkksParams::builder()
        .ring_degree(128)
        .levels(3)
        .special_limbs(3)
        .limb_bits(40)
        .scale_bits(32)
        .build()
        .expect("test parameters are valid");
    let ctx = CkksContext::new(params).expect("test context builds");
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let sk = ctx.keygen(&mut rng);
    (ctx, sk, rng)
}

#[test]
fn strict_policy_catches_every_fault_class_through_the_public_api() {
    let (mut ctx, sk, mut rng) = setup();
    let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
    let pt = ctx.encode(&[1.0, -2.0, 0.5], ctx.default_scale(), 3);
    let clean = ctx.encrypt(&pt, &sk, &mut rng);
    ctx.set_policy(GuardrailPolicy::Strict {
        min_budget_bits: 0.0,
    });

    // Class 1: limb-word bit flip -> conformance scan.
    let mut flipped = clean.clone();
    faults::flip_ciphertext_word(&mut flipped, 0, 1, 7);
    assert!(matches!(
        ctx.try_add(&clean, &flipped),
        Err(FheError::CorruptCiphertext { op: "add", .. })
    ));

    // Class 2: tampered scale (a dropped rescale's bookkeeping state)
    // -> signed-budget threshold.
    let mut drifted = clean.clone();
    faults::corrupt_scale(&mut drifted, 2f64.powi(60));
    assert!(matches!(
        ctx.try_square(&drifted, &relin),
        Err(FheError::BudgetExhausted { .. })
    ));

    // Class 3: corrupted keyswitch hint -> integrity digest.
    let mut bad_key = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
    faults::corrupt_hint_word(&mut bad_key, 0, 0, 0, 0);
    assert!(!bad_key.verify_integrity());
    assert!(matches!(
        ctx.try_mul(&clean, &clean, &bad_key),
        Err(FheError::CorruptKey { op: "mul", .. })
    ));

    // The pristine pipeline still passes under Strict.
    let sq = ctx
        .try_square(&clean, &relin)
        .expect("clean square passes strict guardrails");
    let down = ctx.try_rescale(&sq).expect("rescale passes");
    assert!(ctx.budget_bits(&down) >= 0.0);
}

#[test]
fn auto_rescale_policy_manages_levels_for_the_caller() {
    let (mut ctx, sk, mut rng) = setup();
    let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
    ctx.set_policy(GuardrailPolicy::AutoRescale);
    let pt = ctx.encode(&[0.5, 0.25], ctx.default_scale(), 3);
    let ct = ctx.encrypt(&pt, &sk, &mut rng);
    // Two chained squares with no manual rescale: the policy inserts them.
    let a = ctx
        .try_square(&ct, &relin)
        .expect("auto-rescaled square succeeds");
    assert_eq!(a.level(), 2, "policy must have consumed a level");
    let got = ctx.decode(&ctx.decrypt(&a, &sk), 2);
    assert!((got[0] - 0.25).abs() < 1e-2, "got {}", got[0]);
}

#[test]
fn fallible_api_reports_structured_errors_across_the_workspace() {
    let (ctx, sk, mut rng) = setup();
    let a = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 3), &sk, &mut rng);
    let b = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
    match ctx.try_add(&a, &b) {
        Err(FheError::LevelMismatch { op, got, want }) => {
            assert_eq!(op, "add");
            // `got` is the second operand's level, `want` the first's.
            assert_eq!((got, want), (2, 3));
        }
        other => panic!("expected LevelMismatch, got {other:?}"),
    }
    let low = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 1), &sk, &mut rng);
    assert!(matches!(
        ctx.try_rescale(&low),
        Err(FheError::InvalidParams { op: "rescale", .. })
    ));
}
