//! Cross-validation of the op-level telemetry (`cl-trace`) against the
//! paper's closed-form cost model (`cl_isa::cost`, Table 1).
//!
//! These tests close the loop between the two op-accounting systems in the
//! repo: the *measured* side (relaxed atomic counters bumped by the
//! functional substrate as it executes) and the *analytic* side (the
//! closed-form residue-polynomial counts the accelerator model is built
//! on). Where the formulas are exact, the measured counts must match them
//! **exactly** up to a stated linear slack term — derived below per
//! algorithm, not a tolerance — and a full functional bootstrap's
//! high-level op totals must land within 10% of the analytic
//! [`BootstrapPlan`]'s counts.
//!
//! Accounting convention: the formulas fold `changeRNSBase` multiply-
//! accumulates into their `mult` column (Table 1 calls them out via the
//! CRB split); the counters report them separately as `base_conv`, because
//! that is the CRB functional unit's workload. The assertions therefore
//! compare `base_conv` against `boosted_keyswitch_crb_mult` and `mult`
//! against the formula's *non-CRB* multiplies.
//!
//! The `trace` feature is lit for this binary through the root crate's
//! dev-dependency on `cl-trace`, so the counters are live here even though
//! release builds compile them out.

use std::sync::{Mutex, MutexGuard};

use craterlake::boot::{BootstrapPlan, Bootstrapper};
use craterlake::ckks::{CkksContext, CkksParams, GuardrailPolicy, KeySwitchKind};
use craterlake::isa::cost::{
    boosted_keyswitch_crb_mult, boosted_keyswitch_ops, mul_aux_ops, standard_keyswitch_ops,
};
use cl_trace::OpSnapshot;
use rand::SeedableRng;

/// Counters are process-global; every test in this binary holds this lock
/// for its entire body so a concurrently scheduled test cannot leak passes
/// into another test's measured delta.
static COUNTERS: Mutex<()> = Mutex::new(());

fn counter_lock() -> MutexGuard<'static, ()> {
    assert!(
        cl_trace::enabled(),
        "cross-validation needs live counters; the root crate's \
         dev-dependency must enable cl-trace/trace"
    );
    COUNTERS.lock().unwrap_or_else(|p| p.into_inner())
}

/// Runs `f` and returns its result plus the counter delta it produced.
/// Call only while holding [`counter_lock`].
fn measure<R>(f: impl FnOnce() -> R) -> (R, OpSnapshot) {
    let before = OpSnapshot::capture();
    let out = f();
    (out, OpSnapshot::capture().delta_since(&before))
}

/// Multiplicative budget the keyswitch fixtures run at. Chosen so both
/// digit counts divide it exactly (`alpha = L/t` with no ceiling slack),
/// which is where the Table 1 formulas are exact.
const L: usize = 8;

/// A context whose full budget is [`L`] so a full-level polynomial
/// keyswitches with every digit complete (`l = l_max`), matching the
/// formulas' operating point. Permissive policy: no guardrail work on the
/// measured paths.
fn ks_ctx() -> CkksContext {
    let params = CkksParams::builder()
        .ring_degree(64)
        .levels(L)
        .special_limbs(L)
        .limb_bits(36)
        .scale_bits(30)
        .build()
        .expect("valid params");
    CkksContext::new(params).expect("context")
}

#[test]
fn standard_keyswitch_counts_cross_validate() {
    let _g = counter_lock();
    let ctx = ks_ctx();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let sk = ctx.keygen(&mut rng);
    let ksk = ctx.relin_keygen(&sk, KeySwitchKind::Standard, &mut rng);
    let c = ctx.rns().sample_uniform(&ctx.rns().q_basis(L), &mut rng);

    let (res, d) = measure(|| ctx.try_keyswitch(&c, &ksk));
    res.expect("standard keyswitch");

    let l = L as u64;
    let f = standard_keyswitch_ops(L);
    // Table 1's standard row counts the quadratic hint-product core
    // (`L` digits x 2 output polynomials x ~`L` limbs). The functional
    // path adds a linear fringe the asymptotic formula drops — the input's
    // INTTs, the special limb's handling, the closing ModDown — and does
    // its digit extensions through the CRB unit, which the standard row
    // does not model at all (`base_conv` is asserted on its own below).
    // Asserting the exact fringe is a far stronger check than a percentage
    // tolerance: any miscount, measured or analytic, breaks the equality.
    assert_eq!(d.ntt_total(), f.ntt + 3 * l + 2, "NTT passes");
    assert_eq!(d.mult, f.mult + 7 * l + 2, "mult passes");
    assert_eq!(d.add, f.add + 6 * l, "add passes");
    assert_eq!(d.base_conv, l * l + 2 * l, "CRB conversions");
    assert_eq!(d.rotations, 0);
    assert_eq!(d.ct_mults, 0);
}

#[test]
fn boosted_keyswitch_counts_cross_validate_digits_1_and_4() {
    let _g = counter_lock();
    let ctx = ks_ctx();
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let sk = ctx.keygen(&mut rng);
    let c = ctx.rns().sample_uniform(&ctx.rns().q_basis(L), &mut rng);

    for digits in [1usize, 4] {
        let ksk = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits }, &mut rng);
        let (res, d) = measure(|| ctx.try_keyswitch(&c, &ksk));
        res.expect("boosted keyswitch");

        let l = L as u64;
        let alpha = (L / digits) as u64; // exact: digits divides L
        let f = boosted_keyswitch_ops(L, digits);
        let crb = boosted_keyswitch_crb_mult(L, digits);
        // The NTT and CRB columns are exact — no fringe at all. (The NTT
        // count is only this tight because the hoisted ModUp skips the
        // redundant extension-then-transform of each digit's own limbs.)
        assert_eq!(d.ntt_total(), f.ntt, "digits {digits}: NTT passes");
        assert_eq!(d.base_conv, crb, "digits {digits}: CRB conversions");
        // Non-CRB multiplies/adds carry a linear fringe: the fast-base-
        // conversion scaling of each source limb (l + 2*alpha across ModUp
        // and the two ModDowns), the exact-reduction correction row, and
        // the final subtraction — all O(l), none modeled by Table 1.
        assert_eq!(
            d.mult,
            (f.mult - crb) + 5 * l + 2 * alpha,
            "digits {digits}: non-CRB mult passes"
        );
        assert_eq!(
            d.add,
            (f.add - crb) + 4 * l + 2 * alpha,
            "digits {digits}: non-CRB add passes"
        );
        assert_eq!(d.rotations, 0, "digits {digits}");
        assert_eq!(d.automorph, 0, "digits {digits}");
    }
}

#[test]
fn rescale_counts_match_mul_aux_formula() {
    let _g = counter_lock();
    let ctx = ks_ctx();
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let sk = ctx.keygen(&mut rng);
    let scale = ctx.default_scale() * ctx.default_scale();
    let pt = ctx.encode(&[0.5, -0.25, 0.125], scale, L);
    let ct = ctx.encrypt(&pt, &sk, &mut rng);

    let (res, d) = measure(|| ctx.try_rescale(&ct));
    res.expect("rescale");

    let l = L as u64;
    // `mul_aux_ops` models one tensor + one rescale; its NTT column is
    // entirely the rescale's (the tensor is NTT-domain pointwise work), so
    // the measured rescale must reproduce it exactly: 2 INTTs of the
    // dropped limb plus 2(L-1) NTTs of the correction.
    assert_eq!(d.ntt_total(), mul_aux_ops(L).ntt, "NTT passes");
    assert_eq!(d.mult, 4 * l - 2, "mult passes");
    assert_eq!(d.add, 4 * l - 4, "add passes");
    assert_eq!(d.base_conv, 2 * (l - 1), "CRB conversions");
    assert_eq!(d.ct_mults, 0);
    assert_eq!(d.pt_mults, 0);
}

#[test]
fn mul_decomposes_into_tensor_plus_keyswitch_and_matches_formulas() {
    let _g = counter_lock();
    let ctx = ks_ctx();
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    let sk = ctx.keygen(&mut rng);
    let digits = 4;
    let ksk = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits }, &mut rng);
    let pt = ctx.encode(&[0.5, -0.25, 0.125], ctx.default_scale(), L);
    let ct = ctx.encrypt(&pt, &sk, &mut rng);

    // Reference: the keyswitch alone, on the same degree-2 component the
    // multiplication relinearizes.
    let (ks_res, ks) = measure(|| ctx.try_keyswitch(ct.c1(), &ksk));
    ks_res.expect("reference keyswitch");

    let (res, d) = measure(|| {
        ctx.try_rescale(&ctx.try_mul(&ct, &ct, &ksk)?)
    });
    res.expect("mul + rescale");

    let l = L as u64;
    // mult = tensor (4L) + keyswitch + rescale; add = tensor combines (3L)
    // + keyswitch + rescale.
    assert_eq!(d.mult, ks.mult + 4 * l + (4 * l - 2), "mult passes");
    assert_eq!(d.add, ks.add + 3 * l + (4 * l - 4), "add passes");
    // NTT passes: exactly the formulas' keyswitch + aux totals — the
    // acceptance identity for one full homomorphic multiplication.
    assert_eq!(
        d.ntt_total(),
        boosted_keyswitch_ops(L, digits).ntt + mul_aux_ops(L).ntt,
        "NTT passes of mul+rescale"
    );
    assert_eq!(
        d.base_conv,
        boosted_keyswitch_crb_mult(L, digits) + 2 * (l - 1),
        "CRB conversions of mul+rescale"
    );
    assert_eq!(d.ct_mults, 1);
    assert_eq!(d.rotations, 0);
}

#[test]
fn bootstrap_counts_within_ten_percent_of_analytic_plan() {
    let _g = counter_lock();
    let params = CkksParams::builder()
        .ring_degree(64)
        .levels(20)
        .special_limbs(20)
        .limb_bits(45)
        .scale_bits(45)
        .build()
        .expect("valid params");
    let ctx = CkksContext::new(params)
        .expect("context")
        .with_policy(GuardrailPolicy::Strict {
            min_budget_bits: -5000.0,
        });
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB007);
    let sk = ctx.keygen_sparse(8, &mut rng);
    let booter = Bootstrapper::new(&ctx, 8);
    let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
    let pt = ctx.encode(&[0.4, -0.3, 0.2], ctx.default_scale(), 1);
    let ct = ctx.encrypt(&pt, &sk, &mut rng);

    let (res, d) = measure(|| booter.try_bootstrap(&ctx, &ct, &keys));
    res.expect("bootstrap");

    // An analytic plan shaped like the functional pipeline: one dense
    // CoeffToSlot stage and one dense SlotToCoeff stage (the special-FFT
    // matrices have every generalized diagonal nonzero, so diags = slots),
    // and an EvalMod that runs twice (real and imaginary halves), each
    // costing 6 ct-muls for the degree-7 Taylor power basis plus `r`
    // double-angle squarings, 7 Taylor-coefficient plaintext muls and one
    // closing 1/(2pi) mul. The split and recombine contribute one +/-i/2
    // plaintext mul each.
    let slots = ctx.params().slots();
    let r = booter.depth() - 7;
    let plan = BootstrapPlan {
        n: ctx.params().ring_degree(),
        slots,
        l_max: ctx.max_level(),
        cts_stages: 1,
        sts_stages: 1,
        cts_level_cost: 1,
        diags_per_stage: slots,
        evalmod_ct_muls: 2 * (6 + r),
        evalmod_pt_muls: 2 * 8 + 2,
        evalmod_levels: booter.depth() - 2,
    };
    let (rot, ct_muls, pt_muls) = plan.op_counts();
    let within_10pct = |measured: u64, analytic: usize, what: &str| {
        let a = analytic as f64;
        let m = measured as f64;
        assert!(
            (m - a).abs() <= 0.1 * a,
            "{what}: measured {m} vs analytic {a} (> 10% apart)"
        );
    };
    within_10pct(d.rotations, rot, "rotations");
    within_10pct(d.ct_mults, ct_muls, "ct muls");
    within_10pct(d.pt_mults, pt_muls, "pt muls");
    // The low-level counters must have moved too — a bootstrap is mostly
    // keyswitch traffic.
    assert!(d.ntt_total() > 0 && d.base_conv > 0 && d.automorph > 0);
}
