//! Differential tests for the parallel limb-level execution engine and the
//! lazy-reduction NTT kernels.
//!
//! The performance paths introduced alongside the execution engine must be
//! *bit-exact* with their reference counterparts:
//!
//! - every `RnsContext` operation dispatched over the worker pool must
//!   produce byte-identical polynomials at any thread count (limb-level work
//!   is data-independent, so scheduling cannot change results),
//! - the lazy `[0,4q)` Harvey butterflies must match the strict
//!   always-canonical kernels exactly after the final correction sweep,
//! - a full encrypt → mul → rotate → rescale → decrypt pipeline must be
//!   deterministic across thread settings (given a fixed RNG seed),
//! - lazily materialized keyswitch hints (compact seed + k0 form, k1
//!   regenerated on demand) must be bit-identical to eager generation on
//!   every backend and thread count, including under hint-cache eviction
//!   and re-expansion mid-pipeline.
//!
//! Thread-count mutation is process-global, so every test that touches it
//! serializes on [`THREADS`].

use std::sync::Mutex;

use cl_boot::{try_bsgs_transform, BootstrapKeys, PrecomputedTransform};
use cl_ckks::{Ciphertext, CkksContext, CkksParams, KeySwitchKey, KeySwitchKind};
use cl_math::{set_active_backend, supported_backends, BackendKind, Complex, NttTable};
use cl_rns::{Basis, RnsContext, RnsPoly};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Guards the process-global rayon thread-count while a differential pair
/// runs. Poisoning is irrelevant — the guard only sequences tests.
static THREADS: Mutex<()> = Mutex::new(());

/// Runs `f` once with 1 thread and once with `n` threads, returning both
/// results, with the global thread count restored to 1 afterwards.
fn serial_vs_parallel<R>(n: usize, mut f: impl FnMut() -> R) -> (R, R) {
    let _guard = THREADS.lock().unwrap_or_else(|p| p.into_inner());
    rayon::set_num_threads(1);
    let serial = f();
    rayon::set_num_threads(n);
    let parallel = f();
    rayon::set_num_threads(1);
    (serial, parallel)
}

/// Contexts at a few degrees; NTT tables are shared via the process-wide
/// `(n, q)` cache, so regenerating per test case is cheap.
fn rns_ctx(n: usize) -> RnsContext {
    RnsContext::generate(n, 6, 3, 36).expect("test context")
}

/// An arbitrary but deterministic polynomial over `basis`.
fn poly_from_seed(ctx: &RnsContext, basis: &Basis, seed: u64) -> RnsPoly {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    ctx.sample_uniform(basis, &mut rng)
}

/// One step of an RNS op sequence, chosen by a small opcode. Both operands
/// stay in NTT form throughout ([`RnsContext::sample_uniform`] yields NTT
/// form); opcode 5 roundtrips through the coefficient domain.
fn apply_op(ctx: &RnsContext, acc: &mut RnsPoly, other: &RnsPoly, op: u8) {
    match op % 6 {
        0 => ctx.add_assign(acc, other),
        1 => ctx.sub_assign(acc, other),
        2 => ctx.neg_assign(acc),
        3 => ctx.mul_assign(acc, other),
        4 => ctx.scalar_mul_assign(acc, 0x1234_5678_9abc),
        _ => {
            ctx.from_ntt(acc);
            ctx.to_ntt(acc);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any sequence of RNS ops, over random degrees and bases, is
    /// bit-identical at 1 vs 4 threads.
    #[test]
    fn rns_op_sequence_thread_invariant(
        seed in any::<u64>(),
        n_log in 5u32..9,
        limbs in 1usize..7,
        ops in proptest::collection::vec(0u8..6, 1..12),
    ) {
        let ctx = rns_ctx(1 << n_log);
        let basis = ctx.q_basis(limbs);
        let (serial, parallel) = serial_vs_parallel(4, || {
            let mut acc = poly_from_seed(&ctx, &basis, seed);
            let other = poly_from_seed(&ctx, &basis, seed ^ 0xdead_beef);
            for &op in &ops {
                apply_op(&ctx, &mut acc, &other, op);
            }
            acc
        });
        prop_assert_eq!(serial, parallel);
    }

    /// Lazy-reduction NTT kernels match the strict reference kernels
    /// bit-for-bit at production-like shapes.
    #[test]
    fn lazy_ntt_matches_strict_large(seed in any::<u64>()) {
        for n in [1usize << 10, 1 << 12] {
            let q = cl_math::generate_ntt_primes(n, 59, 1).expect("59-bit prime")[0];
            let table = NttTable::cached(n, q).expect("NTT-friendly prime");
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let data: Vec<u64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, 0..q)).collect();

            let mut lazy = data.clone();
            let mut strict = data.clone();
            table.forward(&mut lazy);
            table.forward_strict(&mut strict);
            prop_assert_eq!(&lazy, &strict, "forward mismatch at n={}", n);

            table.inverse(&mut lazy);
            table.inverse_strict(&mut strict);
            prop_assert_eq!(&lazy, &strict, "inverse mismatch at n={}", n);
            prop_assert_eq!(&lazy, &data, "roundtrip mismatch at n={}", n);
        }
    }
}

/// A small CKKS context for the hoisting/BSGS differential tests.
fn hoist_ctx() -> CkksContext {
    let params = CkksParams::builder()
        .ring_degree(128)
        .levels(4)
        .special_limbs(4)
        .limb_bits(36)
        .scale_bits(30)
        .build()
        .expect("valid params");
    CkksContext::new(params).expect("context")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `try_rotate_hoisted_many` (one shared ModUp) is *bit-identical* to
    /// the naive one-keyswitch-per-rotation path — ciphertext polynomials
    /// and analytic noise estimates — across random steps, levels, digit
    /// counts and thread counts.
    #[test]
    fn hoisted_rotations_match_naive(
        seed in any::<u64>(),
        level in 2usize..5,
        digits in 1usize..3,
        raw_steps in proptest::collection::vec(-8i64..9, 1..5),
    ) {
        // Map the raw draws to nonzero rotation steps (0 needs no key).
        let steps: Vec<i64> = raw_steps.iter().map(|&s| if s == 0 { 1 } else { s }).collect();
        let run = || {
            let ctx = hoist_ctx();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let sk = ctx.keygen(&mut rng);
            let kind = KeySwitchKind::Boosted { digits };
            let keys: Vec<KeySwitchKey> = steps
                .iter()
                .map(|&s| ctx.rotation_keygen(&sk, s, kind, &mut rng))
                .collect();
            let vals: Vec<f64> = (0..64).map(|i| ((i * 13 % 29) as f64) / 29.0 - 0.5).collect();
            let pt = ctx.encode(&vals, ctx.default_scale(), level);
            let ct = ctx.encrypt(&pt, &sk, &mut rng);
            let key_refs: Vec<&KeySwitchKey> = keys.iter().collect();
            let hoisted = ctx
                .try_rotate_hoisted_many(&ct, &steps, &key_refs)
                .expect("hoisted rotations");
            let naive: Vec<Ciphertext> = steps
                .iter()
                .zip(&keys)
                .map(|(&s, k)| ctx.try_rotate(&ct, s, k).expect("naive rotation"))
                .collect();
            (hoisted, naive)
        };
        let ((h_s, n_s), (h_p, n_p)) = serial_vs_parallel(4, run);
        for i in 0..steps.len() {
            prop_assert_eq!(h_s[i].c0(), n_s[i].c0(), "hoisted c0 != naive c0 at step {}", steps[i]);
            prop_assert_eq!(h_s[i].c1(), n_s[i].c1(), "hoisted c1 != naive c1 at step {}", steps[i]);
            prop_assert_eq!(
                h_s[i].noise_estimate_bits().to_bits(),
                n_s[i].noise_estimate_bits().to_bits(),
                "noise estimates must be identical at step {}", steps[i]
            );
            // Thread invariance of both paths.
            prop_assert_eq!(h_s[i].c0(), h_p[i].c0());
            prop_assert_eq!(h_s[i].c1(), h_p[i].c1());
            prop_assert_eq!(n_s[i].c0(), n_p[i].c0());
        }
    }

    /// The double-hoisted BSGS linear transform computes the same map as
    /// the naive per-diagonal rotate-multiply-accumulate, on random sparse
    /// matrices, and is thread-invariant.
    #[test]
    fn bsgs_transform_matches_naive_diagonal_sum(
        seed in any::<u64>(),
        raw_idx in proptest::collection::vec(0i64..64, 1..6),
    ) {
        let mut diag_idx = raw_idx.clone();
        diag_idx.sort_unstable();
        diag_idx.dedup();
        let level = 3usize;
        let run = || {
            let ctx = hoist_ctx();
            let m = ctx.params().slots();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let sk = ctx.keygen(&mut rng);
            let diags: Vec<(i64, Vec<Complex>)> = diag_idx
                .iter()
                .map(|&d| {
                    let v: Vec<Complex> = (0..m)
                        .map(|_| Complex::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
                        .collect();
                    (d, v)
                })
                .collect();
            let pre = PrecomputedTransform::new(&ctx, &diags, level);
            // The BSGS path needs baby/giant keys; the naive reference
            // needs one key per diagonal. Generate the union.
            let mut steps = pre.required_steps();
            steps.extend(diags.iter().map(|(d, _)| *d));
            let keys = BootstrapKeys::generate(
                &ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &steps, &mut rng);
            let vals: Vec<Complex> = (0..m)
                .map(|_| Complex::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
                .collect();
            let pt = ctx.encode_complex(&vals, ctx.default_scale(), level);
            let ct = ctx.encrypt(&pt, &sk, &mut rng);

            let bsgs = try_bsgs_transform(&ctx, &ct, &pre, &keys).expect("bsgs transform");

            // Naive reference: Σ_d diag_d ⊙ rot_d(ct), then rescale.
            let pt_scale = ctx.rns().modulus_value((level - 1) as u32) as f64;
            let mut acc: Option<Ciphertext> = None;
            for (d, diag) in &diags {
                let rotated = if *d == 0 {
                    ct.clone()
                } else {
                    ctx.try_rotate(&ct, *d, keys.try_rot_key(&ctx, *d).expect("diag key").as_ref())
                        .expect("naive rotation")
                };
                let ptd = ctx.encode_complex(diag, pt_scale, level);
                let term = ctx.try_mul_plain(&rotated, &ptd).expect("mul_plain");
                acc = Some(match acc {
                    None => term,
                    Some(a) => ctx.try_add(&a, &term).expect("add"),
                });
            }
            let naive = ctx.try_rescale(&acc.expect("nonempty diags")).expect("rescale");

            // Plaintext reference: out[t] = Σ_d diag_d[t] · v[(t+d) mod m].
            let expect: Vec<Complex> = (0..m)
                .map(|t| {
                    diags.iter().fold(Complex::default(), |s, (d, diag)| {
                        s + diag[t] * vals[(t + *d as usize) % m]
                    })
                })
                .collect();
            let got_bsgs = ctx.decode_complex(&ctx.decrypt(&bsgs, &sk), m);
            let got_naive = ctx.decode_complex(&ctx.decrypt(&naive, &sk), m);
            (bsgs, got_bsgs, got_naive, expect)
        };
        let ((ct_s, bsgs_s, naive_s, expect), (ct_p, _, _, _)) = serial_vs_parallel(4, run);
        assert_eq!(ct_s.c0(), ct_p.c0(), "BSGS output differs across thread counts");
        assert_eq!(ct_s.c1(), ct_p.c1(), "BSGS output differs across thread counts");
        for t in 0..expect.len() {
            prop_assert!(
                (bsgs_s[t] - naive_s[t]).abs() < 1e-2,
                "BSGS vs naive mismatch at slot {}: {:?} vs {:?}", t, bsgs_s[t], naive_s[t]
            );
            prop_assert!(
                (bsgs_s[t] - expect[t]).abs() < 1e-2,
                "BSGS vs plaintext reference mismatch at slot {}: {:?} vs {:?}",
                t, bsgs_s[t], expect[t]
            );
        }
    }
}

/// Full CKKS pipeline (encrypt → mul → rotate → rescale → decrypt) produces
/// byte-identical ciphertexts and identical decodes at 1 vs 4 threads.
#[test]
fn ckks_pipeline_thread_invariant() {
    let run = || {
        let params = CkksParams::builder()
            .ring_degree(256)
            .levels(4)
            .special_limbs(4)
            .limb_bits(36)
            .scale_bits(30)
            .build()
            .expect("valid params");
        let ctx = CkksContext::new(params).expect("context");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
        let sk = ctx.keygen(&mut rng);
        let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 2 }, &mut rng);
        let rot = ctx.rotation_keygen(&sk, 1, KeySwitchKind::Boosted { digits: 2 }, &mut rng);

        let vals: Vec<f64> = (0..8).map(|i| (i as f64) * 0.25 - 1.0).collect();
        let pt = ctx.encode(&vals, ctx.default_scale(), ctx.max_level());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let prod = ctx.mul(&ct, &ct, &relin);
        let rotated = ctx.rotate(&prod, 1, &rot);
        let rescaled = ctx.rescale(&rotated);
        let decoded = ctx.decode(&ctx.decrypt(&rescaled, &sk), vals.len());
        (rescaled, decoded)
    };
    let ((ct_s, dec_s), (ct_p, dec_p)) = serial_vs_parallel(4, run);
    assert_eq!(ct_s.c0(), ct_p.c0(), "c0 differs across thread counts");
    assert_eq!(ct_s.c1(), ct_p.c1(), "c1 differs across thread counts");
    assert_eq!(dec_s, dec_p, "decoded values differ across thread counts");
}

/// The op-level telemetry totals are bit-identical at any thread count:
/// every counted pass is data-independent limb work dispatched over the
/// worker pool, so scheduling changes the interleaving but never the
/// counts. (Relies on all counter-bumping tests in this binary doing their
/// work under the [`THREADS`] lock, which `serial_vs_parallel` holds.)
#[test]
fn op_counters_are_thread_invariant() {
    let run = || {
        let ctx = hoist_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x7AC3);
        let sk = ctx.keygen(&mut rng);
        let kind = KeySwitchKind::Boosted { digits: 2 };
        let relin = ctx.relin_keygen(&sk, kind, &mut rng);
        let rot = ctx.rotation_keygen(&sk, 3, kind, &mut rng);
        let pt = ctx.encode(&[0.5, -0.25, 0.125], ctx.default_scale(), ctx.max_level());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        // Measure only the fixed homomorphic workload, not the setup.
        let before = cl_trace::OpSnapshot::capture();
        let prod = ctx.try_mul(&ct, &ct, &relin).expect("mul");
        let rescaled = ctx.try_rescale(&prod).expect("rescale");
        let _ = ctx.try_rotate(&rescaled, 3, &rot).expect("rotate");
        cl_trace::OpSnapshot::capture().delta_since(&before)
    };
    let (serial, parallel) = serial_vs_parallel(4, run);
    assert_eq!(
        serial, parallel,
        "op counters must not depend on the thread count"
    );
    if cl_trace::enabled() {
        assert!(!serial.is_zero(), "the workload must have been counted");
        assert!(serial.ntt + serial.intt > 0);
        assert!(serial.mult > 0 && serial.add > 0 && serial.base_conv > 0);
        assert_eq!(serial.ct_mults, 1);
        assert_eq!(serial.rotations, 1);
    }
}

/// Runs `f` once with the scalar backend at 1 thread (the reference), then
/// re-runs it under every supported SIMD backend at 1 and 4 threads,
/// asserting every result is bit-identical to the reference.
///
/// Backend selection is process-global like the thread count, so the whole
/// matrix runs under the [`THREADS`] lock and restores the default backend
/// before returning.
fn assert_backend_invariant<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) {
    let _guard = THREADS.lock().unwrap_or_else(|p| p.into_inner());
    let supported = supported_backends();
    set_active_backend(BackendKind::Scalar).expect("scalar is always supported");
    rayon::set_num_threads(1);
    let reference = f();
    for &kind in &supported {
        for threads in [1usize, 4] {
            set_active_backend(kind).expect("listed backend must be supported");
            rayon::set_num_threads(threads);
            let got = f();
            assert_eq!(
                got, reference,
                "backend {kind} at {threads} threads diverged from the scalar serial reference"
            );
        }
    }
    rayon::set_num_threads(1);
    set_active_backend(supported[0]).expect("default backend must be supported");
}

/// NTT forward / inverse outputs are bit-identical on every backend, at
/// both a 50-bit modulus (exercising the AVX-512 IFMA 52-bit path) and a
/// 59-bit modulus (the generic vector path), across thread counts.
#[test]
fn ntt_roundtrip_backend_invariant() {
    for (n, bits) in [(1usize << 10, 50u32), (1 << 13, 50), (1 << 12, 59)] {
        let q = cl_math::generate_ntt_primes(n, bits, 1).expect("prime")[0];
        let table = NttTable::cached(n, q).expect("NTT-friendly prime");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xBACC ^ n as u64);
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        assert_backend_invariant(|| {
            let mut fwd = data.clone();
            table.forward(&mut fwd);
            let mut inv = fwd.clone();
            table.inverse(&mut inv);
            assert_eq!(inv, data, "roundtrip must recover the input");
            fwd
        });
    }
}

/// A keyswitch (ModUp, digit inner product over the gather/mul-acc kernels,
/// ModDown) lands on identical polynomials on every backend and thread
/// count.
#[test]
fn keyswitch_backend_invariant() {
    let params = CkksParams::builder()
        .ring_degree(128)
        .levels(4)
        .special_limbs(2)
        .limb_bits(36)
        .scale_bits(30)
        .build()
        .expect("valid params");
    let ctx = CkksContext::new(params).expect("context");
    let rns = ctx.rns();
    let mut rng = rand::rngs::StdRng::seed_from_u64(43);
    let sk = ctx.keygen(&mut rng);
    let ksk = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 2 }, &mut rng);
    let qb = rns.q_basis(3);
    let signed: Vec<i64> = (0..128).map(|i| (i % 31) - 15).collect();
    let mut msg = rns.from_signed_coeffs(&signed, &qb);
    rns.to_ntt(&mut msg);
    assert_backend_invariant(|| ctx.try_keyswitch(&msg, &ksk).expect("keyswitch"));
}

/// One bootstrap step (EvalMod square + rescale) is bit-identical across
/// backends and thread counts, and its op-level telemetry counts are
/// backend-invariant (counters are recorded above the dispatch layer).
#[test]
fn bootstrap_step_backend_invariant() {
    let ctx = hoist_ctx();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB007);
    let sk = ctx.keygen(&mut rng);
    let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 2 }, &mut rng);
    let pt = ctx.encode(&[0.5, -0.25, 0.125, 0.375], ctx.default_scale(), ctx.max_level());
    let ct = ctx.encrypt(&pt, &sk, &mut rng);
    assert_backend_invariant(|| {
        let before = cl_trace::OpSnapshot::capture();
        let stepped = ctx
            .try_rescale(&ctx.try_mul(&ct, &ct, &relin).expect("square"))
            .expect("rescale");
        let ops = cl_trace::OpSnapshot::capture().delta_since(&before);
        (stepped.c0().clone(), stepped.c1().clone(), ops)
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Lazily materialized keyswitch hints are bit-identical to eager
    /// generation: expanding a compact (seed + k0) key regenerates the same
    /// k1 halves the original keygen drew (enforced by the end-to-end
    /// digest), and keyswitching with the lazy key produces byte-identical
    /// ciphertext polynomials — across random levels, digit layouts, every
    /// supported backend, and 1 vs 4 threads.
    #[test]
    fn lazy_hint_expansion_matches_eager(
        seed in any::<u64>(),
        level in 2usize..5,
        digits in 1usize..4,
    ) {
        let ctx = hoist_ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = ctx.keygen(&mut rng);
        // Cover Standard (one digit per limb) alongside the boosted layouts.
        let kind = if digits == 3 {
            KeySwitchKind::Standard
        } else {
            KeySwitchKind::Boosted { digits }
        };
        let eager = ctx.relin_keygen(&sk, kind, &mut rng);
        let compact = eager.to_compact();
        let qb = ctx.rns().q_basis(level);
        let signed: Vec<i64> = (0..128).map(|i| (i % 29) - 14).collect();
        let mut msg = ctx.rns().from_signed_coeffs(&signed, &qb);
        ctx.rns().to_ntt(&mut msg);
        assert_backend_invariant(|| {
            let lazy = compact.expand(&ctx).expect("lazy hint expansion");
            assert!(lazy.verify_integrity(), "regenerated hint digest must match");
            let from_eager = ctx.try_keyswitch(&msg, &eager).expect("eager keyswitch");
            let from_lazy = ctx.try_keyswitch(&msg, &lazy).expect("lazy keyswitch");
            assert_eq!(
                from_eager, from_lazy,
                "lazy hint must keyswitch identically to the eager key"
            );
            from_eager
        });
    }
}

/// Mid-pipeline hint-cache eviction and re-expansion is invisible to the
/// computation: the BSGS transform through a 1-byte hint cache (a hint is
/// evicted and lazily regenerated at nearly every fetch) matches the
/// roomy-cache run bit-for-bit on every backend and thread count.
#[test]
fn hint_cache_thrash_backend_invariant() {
    use std::sync::Arc;

    use cl_ckks::HintCache;

    let diag_idx: Vec<i64> = vec![0, 1, 3, 9];
    let level = 3usize;
    let run_with_capacity = |capacity: usize| {
        let ctx = hoist_ctx();
        let m = ctx.params().slots();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x1A2B);
        let sk = ctx.keygen(&mut rng);
        let diags: Vec<(i64, Vec<Complex>)> = diag_idx
            .iter()
            .map(|&d| {
                let v: Vec<Complex> = (0..m)
                    .map(|_| Complex::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
                    .collect();
                (d, v)
            })
            .collect();
        let pre = PrecomputedTransform::new(&ctx, &diags, level);
        let cache = Arc::new(HintCache::new(capacity));
        let keys = BootstrapKeys::generate(
            &ctx,
            &sk,
            KeySwitchKind::Boosted { digits: 1 },
            &pre.required_steps(),
            &mut rng,
        )
        .with_cache(Arc::clone(&cache));
        let vals: Vec<Complex> = (0..m)
            .map(|_| Complex::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
            .collect();
        let pt = ctx.encode_complex(&vals, ctx.default_scale(), level);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let out = try_bsgs_transform(&ctx, &ct, &pre, &keys).expect("bsgs transform");
        (out, cache.stats())
    };
    assert_backend_invariant(|| {
        let (roomy, roomy_stats) = run_with_capacity(usize::MAX);
        let (tight, tight_stats) = run_with_capacity(1);
        assert_eq!(roomy_stats.evictions, 0, "roomy cache must never evict");
        assert!(tight_stats.evictions > 0, "tight cache must evict mid-pipeline");
        assert_eq!(
            roomy.c0(),
            tight.c0(),
            "eviction + re-expansion must be bit-invisible"
        );
        assert_eq!(roomy.c1(), tight.c1());
        (roomy.c0().clone(), roomy.c1().clone())
    });
}

/// The keyswitch digit loop (parallel ModUp + superset accumulate) is
/// thread-invariant even below the key's max level, where the hint basis is
/// a strict superset of the target basis.
#[test]
fn keyswitch_below_max_level_thread_invariant() {
    let run = || {
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(4)
            .special_limbs(2)
            .limb_bits(36)
            .scale_bits(30)
            .build()
            .expect("valid params");
        let ctx = CkksContext::new(params).expect("context");
        let rns = ctx.rns();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let sk = ctx.keygen(&mut rng);
        let ksk = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 2 }, &mut rng);
        let qb = rns.q_basis(2); // below max level 4
        let signed: Vec<i64> = (0..128).map(|i| (i % 23) - 11).collect();
        let mut msg = rns.from_signed_coeffs(&signed, &qb);
        rns.to_ntt(&mut msg);
        ctx.try_keyswitch(&msg, &ksk).expect("keyswitch")
    };
    let (serial, parallel) = serial_vs_parallel(4, run);
    assert_eq!(serial, parallel);
}
