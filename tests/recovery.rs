//! Acceptance test for the checkpoint/resume runtime: a deep bootstrapped
//! pipeline (16 multiplicative levels around one bootstrap) under a seeded
//! fault plan — probabilistic bit flips plus one simulated process kill —
//! must converge to the limb-bit-identical output of a fault-free run,
//! with every injected fault detected and retried, and the same class of
//! corruption rejected at load time by the wire format's checksum and
//! fingerprint checks.

use craterlake::boot::Bootstrapper;
use craterlake::ckks::faults::FaultPlan;
use craterlake::ckks::{
    CkksContext, CkksParams, FheError, GuardrailPolicy, KeySwitchKind, SecretKey,
};
use craterlake::runtime::{ExecutorConfig, PipelineExecutor, PipelineOp, Program, RunOutcome};
use rand::SeedableRng;

fn deep_ctx() -> CkksContext {
    let params = CkksParams::builder()
        .ring_degree(64)
        .levels(20)
        .special_limbs(20)
        .limb_bits(45)
        .scale_bits(45)
        .build()
        .unwrap();
    // Strict conformance validation is the fault detector; the budget
    // floor sits below the deep chain's legitimate worst case at these
    // test-scale parameters so it never false-positives.
    CkksContext::new(params)
        .unwrap()
        .with_policy(GuardrailPolicy::Strict {
            min_budget_bits: -5000.0,
        })
}

/// 12 squaring levels, one bootstrap (5 checkpointable stages), 4 more
/// squaring levels: 16 multiplicative levels, 37 micro-ops.
fn deep_program() -> Program {
    let mut p = Program::new();
    for _ in 0..12 {
        p = p.then(PipelineOp::Square).then(PipelineOp::Rescale);
    }
    p = p.then(PipelineOp::Bootstrap);
    for _ in 0..4 {
        p = p.then(PipelineOp::Square).then(PipelineOp::Rescale);
    }
    p
}

struct Fixture {
    ctx: CkksContext,
    sk: SecretKey,
    booter: Bootstrapper,
    keys: craterlake::boot::BootstrapKeys,
}

fn fixture() -> Fixture {
    let ctx = deep_ctx();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xACCE);
    let sk = ctx.keygen_sparse(8, &mut rng);
    let booter = Bootstrapper::new(&ctx, 8);
    let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
    Fixture {
        ctx,
        sk,
        booter,
        keys,
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cl-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn deep_faulty_pipeline_converges_bit_identically_after_crash_and_flips() {
    let f = fixture();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xACCE + 1);
    let pt = f
        .ctx
        .encode(&[0.9, -0.8, 0.7], f.ctx.default_scale(), f.ctx.max_level());
    let ct = f.ctx.encrypt(&pt, &f.sk, &mut rng);
    let program = deep_program();
    assert_eq!(program.num_micro_ops(), 37);

    // --- Fault-free reference run.
    let dir_clean = tmpdir("clean");
    let mut clean = PipelineExecutor::new(
        &f.ctx,
        &f.keys,
        ExecutorConfig {
            checkpoint_every: 4,
            max_retries: 0,
            checkpoint_dir: Some(dir_clean.clone()),
        },
    )
    .unwrap()
    .with_bootstrapper(&f.booter);
    let expected = match clean.run(&ct, &program).unwrap() {
        RunOutcome::Completed(out) => out,
        RunOutcome::Crashed => unreachable!("no fault plan on the clean run"),
    };
    let tc = clean.telemetry();
    assert_eq!(tc.faults_detected, 0);
    assert_eq!(tc.ops_executed, 37);
    assert!(tc.checkpoints_written >= 9, "every 4 ops plus completion");

    // --- Faulty run: seeded bit flips plus one kill mid-bootstrap
    // (micro-op 26 is bootstrap stage 2 of this program).
    let dir_faulty = tmpdir("faulty");
    let mut faulty = PipelineExecutor::new(
        &f.ctx,
        &f.keys,
        ExecutorConfig {
            checkpoint_every: 4,
            max_retries: 32,
            checkpoint_dir: Some(dir_faulty.clone()),
        },
    )
    .unwrap()
    .with_bootstrapper(&f.booter);
    faulty.set_fault_plan(FaultPlan::new(0xBAD5EED, 0.08).with_kill_point(26));
    let first = faulty.run(&ct, &program).unwrap();
    assert!(
        matches!(first, RunOutcome::Crashed),
        "the kill point at micro-op 26 must fire"
    );
    assert_eq!(faulty.telemetry().crashes, 1);
    let ops_before_crash = faulty.telemetry().ops_executed;
    assert!(ops_before_crash >= 4, "crash came after real progress");

    // Resume after the "process restart": only the durable checkpoints
    // survive, and the run must finish from them.
    let recovered = match faulty.resume(&ct, &program).unwrap() {
        RunOutcome::Completed(out) => out,
        RunOutcome::Crashed => panic!("the only kill point was already consumed"),
    };

    assert_eq!(
        recovered, expected,
        "recovered pipeline output must be limb-bit-identical to the clean run"
    );

    let t = faulty.telemetry();
    assert!(t.faults_injected >= 2, "seeded plan must fire: {t:?}");
    assert!(
        t.faults_detected >= t.faults_injected,
        "every injected fault must be detected: {t:?}"
    );
    assert!(t.retries >= t.faults_injected, "each detection retries: {t:?}");
    assert!(t.restores >= 1, "resume must load a durable checkpoint: {t:?}");
    assert!(t.checkpoints_written >= 9, "{t:?}");
    assert!(t.bytes_written > 0, "{t:?}");
    assert!(
        t.ops_executed > ops_before_crash,
        "resume continued, not restarted from scratch: {t:?}"
    );

    // Decrypting the recovered result agrees with the plaintext chain:
    // ((0.9)^2)^2... — 16 squarings of values <1 underflow to ~0, so just
    // check it decodes to finite values (bit-identity above is the real
    // assertion; this guards against a "identical but garbage" regression
    // in the harness itself).
    let back = f.ctx.decode(&f.ctx.decrypt(&recovered, &f.sk), 4);
    assert!(back.iter().all(|v| v.is_finite()));

    let _ = std::fs::remove_dir_all(&dir_clean);
    let _ = std::fs::remove_dir_all(&dir_faulty);
}

#[test]
fn the_same_corruption_is_rejected_at_load_time() {
    let f = fixture();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xACCE + 2);
    let pt = f.ctx.encode(&[1.25, -0.5], f.ctx.default_scale(), 6);
    let ct = f.ctx.encrypt(&pt, &f.sk, &mut rng);
    let blob = f.ctx.serialize_ciphertext(&ct);

    // The fault plan's in-memory corruption is a flipped limb word; the
    // same flip applied to the serialized form must be caught by the
    // per-limb checksum, not silently loaded.
    let mut corrupt = blob.clone();
    let word = blob.len() - 16; // inside the last limb's payload
    corrupt[word] ^= 1 << 3;
    match f.ctx.try_deserialize_ciphertext(&corrupt) {
        Err(FheError::ChecksumMismatch { section, .. }) => {
            assert!(section.contains("limb"), "section was {section:?}")
        }
        other => panic!("flipped limb word must fail the limb checksum, got {other:?}"),
    }

    // A context with a different moduli chain must reject the blob by
    // fingerprint before touching the payload.
    let other_params = CkksParams::builder()
        .ring_degree(64)
        .levels(20)
        .special_limbs(20)
        .limb_bits(44)
        .scale_bits(40)
        .build()
        .unwrap();
    let other_ctx = CkksContext::new(other_params).unwrap();
    assert!(matches!(
        other_ctx.try_deserialize_ciphertext(&blob),
        Err(FheError::ParamsMismatch { .. })
    ));
}
