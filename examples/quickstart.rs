//! Quickstart: encrypt a vector, compute on it homomorphically, decrypt —
//! then compile the same computation onto the simulated CraterLake
//! accelerator and report its execution time.
//!
//! Run with: `cargo run --release --example quickstart`

use craterlake::baselines::craterlake_options;
use craterlake::ckks::{CkksContext, CkksParams, GuardrailPolicy, KeySwitchKind};
use craterlake::compiler::compile_and_run;
use craterlake::isa::HeGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Part 1: functional FHE — the mathematics actually runs.
    // ------------------------------------------------------------------
    let params = CkksParams::builder()
        .ring_degree(1 << 10)
        .levels(4)
        .special_limbs(4)
        .limb_bits(45)
        .scale_bits(45)
        .build()?;
    // Run with strict guardrails: every `try_*` op validates its operands,
    // verifies keyswitch-hint integrity, and fails cleanly (instead of
    // decrypting garbage) if the tracked noise budget runs out.
    let ctx = CkksContext::new(params)?.with_policy(GuardrailPolicy::Strict {
        min_budget_bits: 0.0,
    });
    let mut rng = rand::thread_rng();
    let sk = ctx.keygen(&mut rng);
    let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
    let rot1 = ctx.rotation_keygen(&sk, 1, KeySwitchKind::Boosted { digits: 1 }, &mut rng);

    let xs = vec![1.0, 2.0, 3.0, 4.0];
    let ws = vec![0.5, -1.0, 2.0, 0.25];
    let pt_x = ctx.encode(&xs, ctx.default_scale(), ctx.max_level());
    let pt_w = ctx.encode(&ws, ctx.default_scale(), ctx.max_level());
    let ct_x = ctx.encrypt(&pt_x, &sk, &mut rng);
    let ct_w = ctx.encrypt(&pt_w, &sk, &mut rng);

    // y = (x * w) rotated by one slot, plus x. The fallible API (`try_*`)
    // propagates structured `FheError`s through `?`.
    let prod = ctx.try_rescale(&ctx.try_mul(&ct_x, &ct_w, &relin)?)?;
    let rotated = ctx.try_rotate(&prod, 1, &rot1)?;
    let x_aligned = ctx.try_mod_drop(&ct_x, rotated.level())?;
    let sum = ctx.try_add(&rotated, &x_aligned.with_scale(rotated.scale()))?;

    let out = ctx.decode(&ctx.decrypt(&sum, &sk), 4);
    println!("homomorphic (x*w <<1) + x = {out:.3?}");
    println!(
        "remaining noise budget: {:.1} bits (estimated noise {:.1} bits)",
        ctx.budget_bits(&sum),
        sum.noise_estimate_bits()
    );
    // The rotation is over all N/2 slots; the unfilled ones are zero, so
    // slot 3 receives the zero padding rather than wrapping to slot 0.
    let expect: Vec<f64> = (0..4)
        .map(|i| {
            let shifted = if i + 1 < 4 { xs[i + 1] * ws[i + 1] } else { 0.0 };
            shifted + xs[i]
        })
        .collect();
    println!("plaintext reference       = {expect:.3?}");
    for (a, b) in out.iter().zip(&expect) {
        assert!((a - b).abs() < 1e-3, "homomorphic result mismatch");
    }

    // ------------------------------------------------------------------
    // Part 2: the same computation on the CraterLake machine model.
    // ------------------------------------------------------------------
    let mut g = HeGraph::new();
    let x = g.input(30);
    let w = g.input(30);
    let p = g.mul_ct(x, w);
    let r = g.rescale(p);
    let rot = g.rotate(r, 1);
    let xd = g.mod_drop(x, g.node(rot).level);
    let s = g.add(rot, xd);
    g.output(s);

    let (arch, opts) = craterlake_options(1 << 16);
    let stats = compile_and_run(&g, &arch, &opts);
    println!();
    println!(
        "on CraterLake (N=64K, L=30): {:.1} us, {:.0}% memory-bandwidth utilization",
        stats.exec_ms(&arch) * 1e3,
        100.0 * stats.bw_utilization()
    );
    println!(
        "off-chip traffic: {:.1} MB (of which keyswitch hints {:.1} MB)",
        stats.total_traffic_bytes() / 1e6,
        stats.traffic_of(craterlake::isa::TrafficClass::Ksh) / 1e6
    );
    Ok(())
}
