//! Server smoke: a multi-tenant load against the job server — three
//! clean tenants plus one poisoned tenant whose jobs carry a seeded
//! fault plan and the occasional corrupted input blob. Every surviving
//! job must come back limb-bit-identical to a serial fault-free run, and
//! every poisoned failure must surface as a structured outcome code.
//!
//! `scripts/verify.sh` runs this as a tier-1 gate.
//!
//! Run with: `cargo run --release --example server_smoke`

use std::sync::Arc;

use craterlake::boot::BootstrapKeys;
use craterlake::ckks::faults::FaultPlan;
use craterlake::ckks::{CkksContext, CkksParams, FheError, GuardrailPolicy, KeySwitchKind};
use craterlake::runtime::{ExecutorConfig, PipelineExecutor, PipelineOp, Program, RunOutcome};
use craterlake::server::{JobServer, JobSpec, OutcomeCode, ServerConfig};

const TENANTS: usize = 4;
const JOBS: usize = 6;
const POISONED: usize = 0;

fn program_for(j: usize) -> Program {
    match j % 3 {
        0 => Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::Rotate(1)),
        1 => Program::new()
            .then(PipelineOp::AddPlain(vec![0.25, -0.125]))
            .then(PipelineOp::Conjugate),
        _ => Program::new()
            .then(PipelineOp::Rotate(2))
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale),
    }
}

struct Tenant {
    id: String,
    ctx: Arc<CkksContext>,
    key_blob: Vec<u8>,
    input_blob: Vec<u8>,
    expected: Vec<Vec<u8>>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::thread_rng();
    let mut tenants = Vec::with_capacity(TENANTS);
    for t in 0..TENANTS {
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(4)
            .special_limbs(4)
            .limb_bits(45)
            .scale_bits(40)
            .build()?;
        let ctx = Arc::new(CkksContext::new(params)?.with_policy(GuardrailPolicy::Strict {
            min_budget_bits: -200.0,
        }));
        let sk = ctx.keygen_sparse(8, &mut rng);
        let keys = BootstrapKeys::generate(&ctx, &sk, KeySwitchKind::Standard, &[1, 2], &mut rng);
        let pt = ctx.encode(&[0.5, -0.25, 0.1 * t as f64], ctx.default_scale(), ctx.max_level());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        // Serial fault-free references, one per job shape.
        let mut reference = PipelineExecutor::new(
            &ctx,
            &keys,
            ExecutorConfig {
                checkpoint_every: 0,
                max_retries: 1,
                checkpoint_dir: None,
            },
        )?;
        let mut expected = Vec::with_capacity(JOBS);
        for j in 0..JOBS {
            match reference.run(&ct, &program_for(j))? {
                RunOutcome::Completed(out) => expected.push(ctx.serialize_ciphertext(&out)),
                RunOutcome::Crashed => unreachable!("reference runs have no fault plan"),
            }
        }
        tenants.push(Tenant {
            id: format!("tenant-{t}"),
            key_blob: keys.serialize(&ctx),
            input_blob: ctx.serialize_ciphertext(&ct),
            expected,
            ctx,
        });
    }

    let root = std::env::temp_dir().join(format!("cl_server_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = JobServer::start(ServerConfig {
        workers: 2,
        checkpoint_root: root.clone(),
        checkpoint_every: 2,
        backoff_base_ms: 0,
        ..ServerConfig::default()
    })?;
    for tenant in &tenants {
        server.register_tenant(&tenant.id, Arc::clone(&tenant.ctx))?;
    }

    println!(
        "submitting {} jobs across {TENANTS} tenants (tenant-{POISONED} is poisoned) ...",
        TENANTS * JOBS
    );
    let mut handles = Vec::new();
    for j in 0..JOBS {
        for (t, tenant) in tenants.iter().enumerate() {
            let mut spec = JobSpec::new(
                &tenant.id,
                program_for(j).serialize(tenant.ctx.params_fingerprint()),
                tenant.input_blob.clone(),
                tenant.key_blob.clone(),
            );
            if t == POISONED {
                if j % 3 == 2 {
                    // Corrupt the input payload past the header: admission
                    // passes, the worker's deep parse must reject it.
                    let mut corrupted = tenant.input_blob.clone();
                    let mid = 16 + (corrupted.len() - 16) / 2;
                    corrupted[mid] ^= 0x10;
                    spec.input_blob = corrupted.into();
                } else {
                    spec.fault_plan =
                        Some(FaultPlan::new(0xFA_u64 + j as u64, 0.25).with_kill_point(2));
                }
            }
            let handle = loop {
                match server.submit(spec.clone()) {
                    Ok(h) => break h,
                    Err(FheError::Overloaded { retry_after_ms, .. }) => {
                        std::thread::sleep(std::time::Duration::from_millis(retry_after_ms.min(5)));
                    }
                    Err(other) => return Err(other.into()),
                }
            };
            handles.push((t, j, handle.id));
        }
    }

    server.wait_idle();
    let reports: Vec<_> = tenants
        .iter()
        .map(|tenant| {
            server
                .tenant_report(&tenant.id)
                .expect("tenant is registered")
        })
        .collect();
    let outcomes = server.shutdown();
    let mut ok = 0u64;
    let mut contained = 0u64;
    for (t, j, id) in handles {
        let outcome = outcomes
            .iter()
            .find(|o| o.id == id)
            .expect("every admitted job has an outcome");
        assert_ne!(
            outcome.code,
            OutcomeCode::Internal,
            "unstructured failure: {}",
            outcome.detail
        );
        if outcome.is_ok() {
            ok += 1;
            assert_eq!(
                outcome.output.as_deref(),
                Some(tenants[t].expected[j].as_slice()),
                "tenant-{t} job {j}: output must be bit-identical to the serial reference"
            );
        } else {
            contained += 1;
            assert_eq!(t, POISONED, "only the poisoned tenant may fail");
        }
    }
    for (t, report) in reports.iter().enumerate() {
        if t != POISONED {
            assert_eq!(report.jobs_failed, 0, "clean tenant {t} was damaged");
            assert_eq!(report.recovery.faults_injected, 0);
        }
        println!(
            "  {}: ok={} failed={} shed={} retries={} injected={} detected={} \
             checkpoints={} cache hit/miss={}/{}",
            report.tenant,
            report.jobs_ok,
            report.jobs_failed,
            report.jobs_shed,
            report.retries_spent,
            report.recovery.faults_injected,
            report.recovery.faults_detected,
            report.recovery.checkpoints_written,
            report.key_cache.hits,
            report.key_cache.misses,
        );
    }
    assert!(
        ok >= ((TENANTS - 1) * JOBS) as u64,
        "all clean-tenant jobs must survive"
    );
    assert!(
        contained >= 1,
        "the poisoned tenant never failed — the smoke is vacuous"
    );
    let _ = std::fs::remove_dir_all(&root);
    println!(
        "server smoke: OK ({ok} bit-identical completions, {contained} contained failures)"
    );
    Ok(())
}
