//! Simulate ResNet-20 inference on the CraterLake machine model and
//! compare against the F1+ and CPU baselines — a one-benchmark slice of
//! the paper's Table 3, with the resource breakdown behind it.
//!
//! Run with: `cargo run --release --example simulate_resnet`

use craterlake::apps::resnet20;
use craterlake::baselines::{craterlake_options, f1_plus_options, CpuModel};
use craterlake::compiler::compile_and_run;
use craterlake::core::energy;
use craterlake::isa::TrafficClass;

fn main() {
    let bench = resnet20();
    println!(
        "ResNet-20 inference on one encrypted image: {} homomorphic ops, {} bootstraps",
        bench.graph.num_nodes(),
        bench.graph.op_histogram().mod_raises
    );
    println!();

    let (cl_arch, cl_opts) = craterlake_options(bench.n);
    let cl = compile_and_run(&bench.graph, &cl_arch, &cl_opts);
    println!("CraterLake: {:.1} ms", cl.exec_ms(&cl_arch));
    println!(
        "  FU utilization {:.0}%, memory-bandwidth utilization {:.0}%",
        100.0 * cl.fu_utilization(&cl_arch),
        100.0 * cl.bw_utilization()
    );
    println!(
        "  traffic: {:.1} GB total (hints {:.1} GB, inputs/weights {:.1} GB)",
        cl.total_traffic_bytes() / 1e9,
        cl.traffic_of(TrafficClass::Ksh) / 1e9,
        cl.traffic_of(TrafficClass::Input) / 1e9
    );
    let p = energy::power_breakdown(&cl_arch, &cl);
    println!(
        "  average power {:.0} W (FUs {:.0}, RF {:.0}, NoC {:.0}, HBM {:.0})",
        p.total(),
        p.fu,
        p.rf,
        p.noc,
        p.hbm
    );
    println!();

    let (f1_arch, f1_opts) = f1_plus_options(bench.n);
    let f1 = compile_and_run(&bench.graph, &f1_arch, &f1_opts);
    println!(
        "F1+:        {:.1} ms ({:.1}x slower)",
        f1.exec_ms(&f1_arch),
        f1.cycles / cl.cycles
    );

    let cpu = CpuModel::paper_calibrated();
    let cpu_s = cpu.time_for_graph(&bench.graph, bench.n, &cl_opts.ks_policy);
    println!(
        "CPU (32-core, modeled): {:.0} s ({:.0}x slower)",
        cpu_s,
        cpu_s * 1e3 / cl.exec_ms(&cl_arch)
    );
    println!();
    println!("Paper reference: 249 ms on CraterLake, 2,693 ms on F1+, 23 min on the CPU;");
    println!("real-time private deep learning becomes possible (Sec. 1).");
}
