//! Hint-cache smoke: the same BSGS linear transform and the same executor
//! pipeline run twice — once with a hint cache roomy enough to hold every
//! materialized keyswitch hint, once with a 1-byte cache that evicts and
//! lazily re-expands a hint at nearly every fetch. The outputs must be
//! limb-bit-identical, and the tight cache must actually have thrashed
//! (hits and evictions both observed), proving eviction only ever costs
//! regeneration time, never correctness.
//!
//! `scripts/verify.sh` runs this as a tier-1 gate.
//!
//! Run with: `cargo run --release --example hint_cache_smoke`

use std::sync::Arc;

use craterlake::boot::{try_bsgs_transform, BootstrapKeys, PrecomputedTransform};
use craterlake::ckks::{CkksContext, CkksParams, GuardrailPolicy, HintCache, KeySwitchKind};
use craterlake::math::Complex;
use craterlake::runtime::{ExecutorConfig, PipelineExecutor, PipelineOp, Program, RunOutcome};
use rand::SeedableRng;

fn keys_with_cache(
    ctx: &CkksContext,
    steps: &[i64],
    cache: Arc<HintCache>,
) -> BootstrapKeys {
    // Regenerating from the same seed yields bit-identical key material, so
    // the two runs differ only in hint-cache residency policy.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
    let sk = ctx.keygen(&mut rng);
    BootstrapKeys::generate(ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, steps, &mut rng)
        .with_cache(cache)
}

fn main() {
    let params = CkksParams::builder()
        .ring_degree(256)
        .levels(3)
        .special_limbs(3)
        .limb_bits(36)
        .scale_bits(30)
        .build()
        .expect("params");
    let ctx = CkksContext::new(params)
        .expect("ckks context")
        .with_policy(GuardrailPolicy::Strict {
            min_budget_bits: -200.0,
        });
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
    let sk = ctx.keygen(&mut rng);

    // A small banded linear transform (one CoeffToSlot-shaped stage).
    let slots = ctx.params().slots();
    let level = ctx.max_level();
    let mut drng = rand::rngs::StdRng::seed_from_u64(11);
    let diags: Vec<(i64, Vec<Complex>)> = (0..8i64)
        .map(|d| {
            let v: Vec<Complex> = (0..slots)
                .map(|_| {
                    Complex::new(
                        rand::Rng::gen_range(&mut drng, -0.5..0.5),
                        rand::Rng::gen_range(&mut drng, -0.5..0.5),
                    )
                })
                .collect();
            (d, v)
        })
        .collect();
    let pre = PrecomputedTransform::new(&ctx, &diags, level);
    let mut steps = pre.required_steps();
    steps.extend([1, 2]);
    steps.sort_unstable();
    steps.dedup();

    let pt = ctx.encode(&[0.5, -0.25, 0.125], ctx.default_scale(), level);
    let ct = ctx.encrypt(&pt, &sk, &mut rng);

    let roomy_cache = Arc::new(HintCache::new(usize::MAX));
    let tight_cache = Arc::new(HintCache::new(1));
    let roomy = keys_with_cache(&ctx, &steps, Arc::clone(&roomy_cache));
    let tight = keys_with_cache(&ctx, &steps, Arc::clone(&tight_cache));

    // BSGS transform: exercises the rotation-schedule plan, hoisted baby
    // steps, and giant-step prefetch under both residency regimes.
    let out_roomy = try_bsgs_transform(&ctx, &ct, &pre, &roomy).expect("bsgs roomy");
    let out_tight = try_bsgs_transform(&ctx, &ct, &pre, &tight).expect("bsgs tight");
    assert_eq!(
        ctx.serialize_ciphertext(&out_roomy),
        ctx.serialize_ciphertext(&out_tight),
        "BSGS output must be bit-identical under hint-cache thrashing"
    );

    // Executor pipeline: square/rotate/conjugate fetch relin, rotation, and
    // conjugation hints mid-pipeline.
    let program = Program::new()
        .then(PipelineOp::Square)
        .then(PipelineOp::Rescale)
        .then(PipelineOp::Rotate(1))
        .then(PipelineOp::Conjugate)
        .then(PipelineOp::Rotate(2));
    let run = |keys: &BootstrapKeys| {
        let config = ExecutorConfig {
            checkpoint_every: 0,
            max_retries: 0,
            checkpoint_dir: None,
        };
        let mut exec = PipelineExecutor::new(&ctx, keys, config).expect("executor");
        match exec.run(&ct, &program).expect("pipeline run") {
            RunOutcome::Completed(out) => ctx.serialize_ciphertext(&out),
            RunOutcome::Crashed => unreachable!("no fault plan"),
        }
    };
    assert_eq!(
        run(&roomy),
        run(&tight),
        "pipeline output must be bit-identical under hint-cache thrashing"
    );

    let rs = roomy_cache.stats();
    let ts = tight_cache.stats();
    assert!(rs.hits > 0, "roomy cache must serve warm hits");
    assert_eq!(rs.evictions, 0, "roomy cache must never evict");
    assert!(ts.evictions > 0, "tight cache must have thrashed");
    // Over-budget caches keep exactly the one entry in flight resident.
    assert!(ts.bytes_resident > 0, "tight cache holds its single live hint");
    assert!(
        ts.bytes_resident < rs.bytes_resident,
        "tight cache must be bounded well below the roomy working set"
    );
    println!(
        "hint_cache_smoke: outputs bit-identical; roomy {} hits / {} misses / {} KiB resident, \
         tight {} hits / {} misses / {} evictions",
        rs.hits,
        rs.misses,
        rs.bytes_resident / 1024,
        ts.hits,
        ts.misses,
        ts.evictions
    );
}
