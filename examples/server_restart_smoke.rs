//! Restart smoke: crash-durable serving end to end. A tenant submits a
//! batch of jobs, the server is killed mid-flight (simulated `kill -9`:
//! queue abandoned, in-memory outcomes lost, journal tail left as-is),
//! and `JobServer::recover` restarts from the write-ahead journal — the
//! finished jobs' outcomes are replayed, the unfinished ones re-admitted
//! and resumed from their durable checkpoints. Every output must be
//! limb-bit-identical to a serial fault-free reference run.
//!
//! `scripts/verify.sh` runs this as a tier-1 gate.
//!
//! Run with: `cargo run --release --example server_restart_smoke`

use std::sync::Arc;
use std::time::Duration;

use craterlake::boot::BootstrapKeys;
use craterlake::ckks::{CkksContext, CkksParams, GuardrailPolicy, KeySwitchKind};
use craterlake::runtime::{ExecutorConfig, PipelineExecutor, PipelineOp, Program, RunOutcome};
use craterlake::server::{FsyncPolicy, JobServer, JobSpec, ServerConfig, TenantSetup};

const JOBS: usize = 6;

fn program_for(j: usize) -> Program {
    match j % 3 {
        0 => Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::Rotate(1)),
        1 => Program::new()
            .then(PipelineOp::AddPlain(vec![0.25, -0.125]))
            .then(PipelineOp::Conjugate)
            .then(PipelineOp::Rotate(2)),
        _ => Program::new()
            .then(PipelineOp::Rotate(2))
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale),
    }
}

fn config(root: &std::path::Path) -> ServerConfig {
    ServerConfig {
        workers: 2,
        checkpoint_root: root.to_path_buf(),
        checkpoint_every: 1,
        backoff_base_ms: 0,
        // Every append durable before the submit acknowledges: what the
        // client was told is admitted survives any crash.
        journal_fsync: FsyncPolicy::Always,
        ..ServerConfig::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::thread_rng();
    let params = CkksParams::builder()
        .ring_degree(64)
        .levels(4)
        .special_limbs(4)
        .limb_bits(45)
        .scale_bits(40)
        .build()?;
    let ctx = Arc::new(CkksContext::new(params)?.with_policy(GuardrailPolicy::Strict {
        min_budget_bits: -200.0,
    }));
    let sk = ctx.keygen_sparse(8, &mut rng);
    let keys = BootstrapKeys::generate(&ctx, &sk, KeySwitchKind::Standard, &[1, 2], &mut rng);
    let pt = ctx.encode(&[0.5, -0.25, 0.125], ctx.default_scale(), ctx.max_level());
    let ct = ctx.encrypt(&pt, &sk, &mut rng);
    let key_blob = keys.serialize(&ctx);
    let input_blob = ctx.serialize_ciphertext(&ct);

    // Serial fault-free references, one per job shape.
    let mut reference = PipelineExecutor::new(
        &ctx,
        &keys,
        ExecutorConfig {
            checkpoint_every: 0,
            max_retries: 0,
            checkpoint_dir: None,
        },
    )?;
    let mut expected = Vec::with_capacity(JOBS);
    for j in 0..JOBS {
        match reference.run(&ct, &program_for(j))? {
            RunOutcome::Completed(out) => expected.push(ctx.serialize_ciphertext(&out)),
            RunOutcome::Crashed => unreachable!("reference runs have no fault plan"),
        }
    }

    let root = std::env::temp_dir().join(format!("cl_restart_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // --- First life: submit everything, then die mid-batch.
    let server = JobServer::start(config(&root))?;
    server.register_tenant("tenant-a", Arc::clone(&ctx))?;
    let mut ids = Vec::with_capacity(JOBS);
    for j in 0..JOBS {
        let spec = JobSpec::new(
            "tenant-a",
            program_for(j).serialize(ctx.params_fingerprint()),
            input_blob.clone(),
            key_blob.clone(),
        );
        ids.push(server.submit(spec)?.id);
    }
    // Let some (not all) jobs finish so the recovery exercises both the
    // replayed-outcome path and the resume-from-checkpoint path.
    while server.pending() > JOBS - 2 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let died_pending = server.pending();
    server.kill();
    println!(
        "killed the server with {died_pending} of {JOBS} jobs unfinished \
         (journal left as the crash tore it)"
    );

    // --- Second life: replay the journal, resume, converge.
    let setups = [TenantSetup {
        id: "tenant-a".to_string(),
        ctx: Arc::clone(&ctx),
        bootstrapper: None,
    }];
    let (server, report) = JobServer::recover(config(&root), &setups)?;
    println!(
        "recovery: {} records replayed ({} skipped), {} outcomes reconstructed, \
         {} jobs resumed, {} orphaned, {} checkpoint dirs swept",
        report.records_replayed,
        report.records_skipped,
        report.jobs_already_complete,
        report.jobs_resumed,
        report.jobs_orphaned,
        report.checkpoint_dirs_swept,
    );
    assert_eq!(
        report.jobs_already_complete + report.jobs_resumed,
        JOBS as u64,
        "every acknowledged job must be accounted for after the crash"
    );
    assert_eq!(report.jobs_orphaned, 0);
    assert!(
        report.jobs_already_complete >= 1,
        "the kill waited for durable completions"
    );

    for (j, &id) in ids.iter().enumerate() {
        let outcome = server.wait(id);
        assert!(
            outcome.is_ok(),
            "job {j} failed after recovery: {}",
            outcome.detail
        );
        assert_eq!(
            outcome.output.as_deref(),
            Some(expected[j].as_slice()),
            "job {j}: recovered output must be limb-bit-identical to the reference"
        );
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    println!(
        "restart smoke: OK ({} replayed + {} resumed, all {JOBS} bit-identical)",
        report.jobs_already_complete, report.jobs_resumed
    );
    Ok(())
}
