//! Compile-and-run smoke: a LoLa-MNIST layer graph (16 diagonals, BSGS
//! packing, square activation) is compiled by `lower_to_program` into a
//! pipeline `Program` and executed at N = 8K, and the compiler's three
//! promises are checked against the run:
//!
//!   1. `predict_program`'s closed-form op counts equal the live
//!      `cl-trace` counter delta of a warm-cache run *exactly*;
//!   2. the residency plan's predicted live-ciphertext high-water mark
//!      equals the executor's measured peak;
//!   3. the decrypted output matches the unencrypted reference
//!      evaluation of the same graph.
//!
//! `scripts/verify.sh` runs this as a tier-1 gate.
//!
//! Run with: `cargo run --release --example compile_run_smoke`

use craterlake::apps::{eval_plain, lola_layer_runnable};
use craterlake::boot::BootstrapKeys;
use craterlake::ckks::{CkksContext, CkksParams, GuardrailPolicy, KeySwitchKind};
use craterlake::compiler::{lower_to_program, predict_program, LowerOptions};
use craterlake::runtime::{ExecutorConfig, PipelineExecutor, RunOutcome};
use cl_trace::OpSnapshot;
use rand::SeedableRng;

const RING: usize = 8192;
const LEVELS: usize = 6;
const INPUT_LEVEL: usize = 4;
const DIAGS: usize = 16;

fn main() {
    assert!(
        cl_trace::enabled(),
        "compile_run_smoke needs live counters; the root crate's \
         dev-dependency enables cl-trace/trace for examples"
    );
    let params = CkksParams::builder()
        .ring_degree(RING)
        .levels(LEVELS)
        .special_limbs(LEVELS)
        .limb_bits(45)
        .scale_bits(40)
        .build()
        .expect("params");
    let ctx = CkksContext::new(params)
        .expect("ckks context")
        .with_policy(GuardrailPolicy::Strict { min_budget_bits: -60.0 });
    let slots = ctx.params().slots();

    // The workload: one BSGS matvec layer with the square activation.
    let w = lola_layer_runnable(slots, INPUT_LEVEL, DIAGS, 1, true);
    let lowered = lower_to_program(
        &w.graph,
        &LowerOptions {
            slots,
            plain: w.plain.clone(),
            reorder: true,
            auto_bootstrap: None,
            max_live_cts: None,
        },
    )
    .expect("layer graph lowers");
    println!(
        "compiled {}: {} graph nodes -> {} pipeline ops, rotation keys {:?}",
        w.name,
        w.graph.num_nodes(),
        lowered.program.len(),
        lowered.rotation_steps,
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
    let sk = ctx.keygen_sparse(64, &mut rng);
    let keys = BootstrapKeys::generate(
        &ctx,
        &sk,
        KeySwitchKind::Standard,
        &lowered.rotation_steps,
        &mut rng,
    );
    let image: Vec<f64> = (0..slots).map(|i| ((i * 5) % 17) as f64 / 17.0 - 0.4).collect();
    let x = ctx.encrypt(&ctx.encode(&image, ctx.default_scale(), INPUT_LEVEL), &sk, &mut rng);

    let config = ExecutorConfig { checkpoint_every: 0, max_retries: 1, checkpoint_dir: None };
    let run = |warm: &str| {
        let mut exec = PipelineExecutor::new(&ctx, &keys, config.clone()).expect("executor");
        let out = match exec.run_graph(std::slice::from_ref(&x), &lowered.program).expect(warm) {
            RunOutcome::Completed(ct) => ct,
            RunOutcome::Crashed => unreachable!("no fault plan attached"),
        };
        (out, exec.telemetry().peak_live_cts)
    };

    // Warm run: materializes every seeded keyswitch hint (regeneration
    // work the cost model deliberately excludes), then measure.
    let (warm_out, peak) = run("warm run");
    let before = OpSnapshot::capture();
    let (out, _) = run("measured run");
    let measured = OpSnapshot::capture().delta_since(&before);
    assert_eq!(out, warm_out, "warm and measured runs must be bit-identical");

    // Promise 1: predicted == measured, field by field.
    let predicted =
        predict_program(LEVELS, KeySwitchKind::Standard, &[INPUT_LEVEL], &lowered.program)
            .expect("program predicts");
    for (name, m, p) in [
        ("ntt", measured.ntt, predicted.ntt),
        ("intt", measured.intt, predicted.intt),
        ("mult", measured.mult, predicted.mult),
        ("add", measured.add, predicted.add),
        ("base_conv", measured.base_conv, predicted.base_conv),
        ("automorph", measured.automorph, predicted.automorph),
        ("rotations", measured.rotations, predicted.rotations),
        ("ct_mults", measured.ct_mults, predicted.ct_mults),
        ("pt_mults", measured.pt_mults, predicted.pt_mults),
    ] {
        assert_eq!(m, p, "{name}: measured {m} != predicted {p}");
        println!("  {name:>10}: predicted = measured = {m}");
    }
    assert_eq!(measured.hint_regen, 0, "warm run must not regenerate hints");
    assert_eq!(lowered.counts.rotations, measured.rotations);
    assert_eq!(lowered.counts.ct_mults, measured.ct_mults);
    assert_eq!(lowered.counts.pt_mults, measured.pt_mults);

    // Promise 2: the residency plan bounds live ciphertext memory.
    assert_eq!(
        peak, lowered.predicted_peak_live,
        "residency plan must predict the executor's live-ciphertext peak"
    );
    println!("  peak live ciphertexts: predicted = measured = {peak}");

    // Promise 3: the compiled run computes the layer.
    let reference = eval_plain(&w, &[image]);
    let got = ctx.decode(&ctx.decrypt(&out, &sk), slots);
    let mut worst = 0.0f64;
    for (g, r) in got.iter().zip(&reference) {
        worst = worst.max((g - r).abs());
    }
    assert!(worst < 1e-3, "decrypted output drifted {worst} from the plain reference");
    println!("  max |decrypt - reference| = {worst:.2e} over {slots} slots");
    println!("compile_run_smoke: OK");
}
