//! Encrypted inference: run a small logistic-regression classifier on
//! encrypted inputs and verify the result against the plaintext model —
//! the privacy-preserving machine-learning use case that motivates the
//! paper (Fig. 1: the server computes on data it cannot read).
//!
//! Run with: `cargo run --release --example encrypted_inference`

use craterlake::ckks::{CkksContext, CkksParams, GuardrailPolicy, KeySwitchKind};

/// Degree-3 least-squares approximation of the logistic function on
/// [-4, 4]: sigma(x) ~ 0.5 + 0.197x - 0.004x^3.
fn sigmoid_approx(x: f64) -> f64 {
    0.5 + 0.197 * x - 0.004 * x * x * x
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two spare levels beyond the circuit's depth: strict guardrails
    // account the budget at each op's (pre-rescale) result, so the chain
    // needs headroom above the scale even at the deepest multiply.
    let params = CkksParams::builder()
        .ring_degree(1 << 10)
        .levels(8)
        .special_limbs(8)
        .limb_bits(45)
        .scale_bits(45)
        .build()?;
    // A production server wants structured errors, not panics: strict
    // guardrails validate operands and keys and track the noise budget on
    // every fallible op.
    let ctx = CkksContext::new(params)?.with_policy(GuardrailPolicy::Strict {
        min_budget_bits: 0.0,
    });
    let mut rng = rand::thread_rng();
    let sk = ctx.keygen(&mut rng);
    let kind = KeySwitchKind::Boosted { digits: 1 };
    let relin = ctx.relin_keygen(&sk, kind, &mut rng);

    // A tiny trained model: 8 features. The weights stay in plaintext
    // (Sec. 2.1: unencrypted weights trade no input privacy away).
    let weights = [0.8, -0.5, 0.3, 0.1, -0.9, 0.4, 0.2, -0.3];
    let bias = 0.1;
    // The client's private feature vector, packed with rotations in mind:
    // we lay features across slots and reduce with rotations.
    let features = [1.2, 0.7, -0.3, 0.9, 0.1, -1.1, 0.6, 0.2];

    // Client encrypts.
    let pt = ctx.encode(&features, ctx.default_scale(), ctx.max_level());
    let ct = ctx.encrypt(&pt, &sk, &mut rng);

    // Server: dot product = elementwise multiply + log-tree reduction.
    // All compute goes through the fallible API: any level/scale misuse,
    // corrupted operand, or exhausted budget surfaces as an `FheError`
    // through `?` instead of a panic deep in the pipeline.
    let w_pt = ctx.encode(&weights, ctx.default_scale(), ct.level());
    let mut acc = ctx.try_rescale(&ctx.try_mul_plain(&ct, &w_pt)?)?;
    let mut step = 4usize;
    while step >= 1 {
        let key = ctx.rotation_keygen(&sk, step as i64, kind, &mut rng);
        let rot = ctx.try_rotate(&acc, step as i64, &key)?;
        acc = ctx.try_add(&acc, &rot)?;
        if step == 1 {
            break;
        }
        step /= 2;
    }
    // Add the bias.
    let bias_pt = ctx.encode(&vec![bias; 8], acc.scale(), acc.level());
    let z = ctx.try_add_plain(&acc, &bias_pt)?;

    // sigma(z) via the polynomial, factored for scale stability:
    // 0.5 + z * (0.197 - 0.004 z^2).
    let z2 = ctx.try_rescale(&ctx.try_square(&z, &relin)?)?;
    // -0.004 z^2, encoding the constant at the scale of the modulus the
    // rescale drops so the ciphertext scale is preserved exactly.
    let q_drop = ctx.rns().modulus_value((z2.level() - 1) as u32) as f64;
    let c_pt = ctx.encode(&vec![-0.004; 8], q_drop, z2.level());
    let w = ctx.try_rescale(&ctx.try_mul_plain(&z2, &c_pt)?)?;
    let lin_pt = ctx.encode(&vec![0.197; 8], w.scale(), w.level());
    let inner = ctx.try_add_plain(&w, &lin_pt)?;
    let z_d = ctx.try_mod_drop(&z, inner.level())?;
    let poly = ctx.try_rescale(&ctx.try_mul(&inner, &z_d, &relin)?)?;
    let half_pt = ctx.encode(&vec![0.5; 8], poly.scale(), poly.level());
    let score_ct = ctx.try_add_plain(&poly, &half_pt)?;
    println!(
        "server-side noise budget after inference: {:.1} bits",
        ctx.budget_bits(&score_ct)
    );

    // Client decrypts. Slot 0 holds the full reduction.
    let score = ctx.decode(&ctx.decrypt(&score_ct, &sk), 1)[0];
    let z_plain: f64 =
        features.iter().zip(&weights).map(|(f, w)| f * w).sum::<f64>() + bias;
    let expect = sigmoid_approx(z_plain);
    println!("encrypted inference score: {score:.4}");
    println!("plaintext reference:       {expect:.4}");
    println!("classification:            {}", if score > 0.5 { "positive" } else { "negative" });
    assert!(
        (score - expect).abs() < 1e-2,
        "homomorphic result deviates from reference"
    );
    println!("(match within 1e-2 — the server never saw the features)");
    Ok(())
}
