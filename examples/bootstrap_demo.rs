//! Unbounded computation: run a multiplication chain far deeper than the
//! multiplicative budget by bootstrapping whenever the budget runs out —
//! the capability that gives the paper its title.
//!
//! Uses the functional bootstrapping implementation at test-scale
//! parameters: every value below is really encrypted, really computed on,
//! and really refreshed.
//!
//! Run with: `cargo run --release --example bootstrap_demo`

use craterlake::boot::Bootstrapper;
use craterlake::ckks::{CkksContext, CkksParams, KeySwitchKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CkksParams::builder()
        .ring_degree(64)
        .levels(20)
        .special_limbs(20)
        .limb_bits(45)
        .scale_bits(45)
        .build()?;
    let ctx = CkksContext::new(params)?;
    let mut rng = rand::thread_rng();
    // Sparse secret: bounds bootstrapping's mod-raise overflow (see
    // cl-boot docs; the paper's non-sparse-key techniques are modeled in
    // the performance plan instead).
    let sk = ctx.keygen_sparse(8, &mut rng);
    let kind = KeySwitchKind::Boosted { digits: 1 };
    let relin = ctx.relin_keygen(&sk, kind, &mut rng);
    let booter = Bootstrapper::new(&ctx, 8);
    let keys = booter.keygen(&ctx, &sk, kind, &mut rng);

    // Iterate x <- x * (2 - x): converges to 1 for x in (0, 2) and needs
    // one level per iteration — far more iterations than the budget.
    let slots = ctx.params().slots();
    let mut truth: Vec<f64> = (0..slots).map(|i| 0.2 + 0.05 * (i % 12) as f64).collect();
    let pt = ctx.encode(&truth, ctx.default_scale(), ctx.max_level());
    let mut ct = ctx.encrypt(&pt, &sk, &mut rng);

    let iterations = 24; // far beyond the 20-level budget
    let mut bootstraps = 0;
    for step in 0..iterations {
        if ct.level() < 2 {
            print!("  [budget exhausted at level {} -> bootstrapping...", ct.level());
            // The fallible form reports MissingKey / InvalidParams /
            // budget failures as a structured error instead of panicking.
            ct = booter.try_bootstrap(&ctx, &ct, &keys)?;
            bootstraps += 1;
            println!(" refreshed to level {}]", ct.level());
        }
        // two_minus_x = 2 - x, computed as plaintext constant minus ct.
        let two = ctx.encode(&vec![2.0; slots], ct.scale(), ct.level());
        let neg = ctx.neg_ct(&ct);
        let two_minus = ctx.add_plain(&neg, &two);
        ct = ctx.rescale(&ctx.mul(&ct, &two_minus, &relin));
        for t in truth.iter_mut() {
            *t = *t * (2.0 - *t);
        }
        if step % 6 == 5 {
            let got = ctx.decode(&ctx.decrypt(&ct, &sk), 3);
            println!(
                "after {:>2} muls (level {:>2}): {:.4?}  (truth {:.4?})",
                step + 1,
                ct.level(),
                &got[..3],
                &truth[..3]
            );
        }
    }
    let got = ctx.decode(&ctx.decrypt(&ct, &sk), slots);
    let max_err = got
        .iter()
        .zip(&truth)
        .map(|(g, t)| (g - t).abs())
        .fold(0.0f64, f64::max);
    println!();
    println!(
        "{iterations} multiplications on a {}-level budget via {bootstraps} bootstraps; \
         max error {max_err:.4}",
        ctx.max_level()
    );
    assert!(max_err < 0.1, "drift too large");
    println!("unbounded-depth computation: works.");
    Ok(())
}
