//! Fault-recovery smoke: a short bootstrapped pipeline, run clean and then
//! under a fixed-seed fault plan that flips ciphertext bits mid-run. The
//! executor must detect every hit through the strict guardrails, restore
//! its last good checkpoint, retry, and land on a final ciphertext that is
//! limb-bit-identical to the clean run's.
//!
//! `scripts/verify.sh` runs this as a tier-1 gate.
//!
//! Run with: `cargo run --release --example fault_recovery_smoke`

use craterlake::boot::Bootstrapper;
use craterlake::ckks::faults::FaultPlan;
use craterlake::ckks::{CkksContext, CkksParams, GuardrailPolicy, KeySwitchKind};
use craterlake::runtime::{ExecutorConfig, PipelineExecutor, PipelineOp, Program, RunOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CkksParams::builder()
        .ring_degree(64)
        .levels(20)
        .special_limbs(20)
        .limb_bits(45)
        .scale_bits(45)
        .build()?;
    // Strict validation is what turns an injected bit flip into a
    // *detected* fault; the generous budget floor keeps the deep
    // squaring chain itself legal at these test-scale parameters.
    let ctx = CkksContext::new(params)?.with_policy(GuardrailPolicy::Strict {
        min_budget_bits: -5000.0,
    });
    let mut rng = rand::thread_rng();
    let sk = ctx.keygen_sparse(8, &mut rng);
    let booter = Bootstrapper::new(&ctx, 8);
    let keys = booter.keygen(&ctx, &sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);

    let pt = ctx.encode(&[0.6, -0.4, 0.2], ctx.default_scale(), ctx.max_level());
    let ct = ctx.encrypt(&pt, &sk, &mut rng);

    // Two squaring levels, a bootstrap (5 checkpointable stages), one more
    // squaring level: 11 micro-ops.
    let program = Program::new()
        .then_repeat(PipelineOp::Square, 1)
        .then(PipelineOp::Rescale)
        .then(PipelineOp::Square)
        .then(PipelineOp::Rescale)
        .then(PipelineOp::Bootstrap)
        .then(PipelineOp::Square)
        .then(PipelineOp::Rescale);

    let dir = std::env::temp_dir().join(format!("cl_fault_smoke_{}", std::process::id()));
    let config = |sub: &str| ExecutorConfig {
        checkpoint_every: 2,
        max_retries: 16,
        checkpoint_dir: Some(dir.join(sub)),
    };

    println!("clean run ...");
    let mut clean = PipelineExecutor::new(&ctx, &keys, config("clean"))?.with_bootstrapper(&booter);
    let expected = match clean.run(&ct, &program)? {
        RunOutcome::Completed(out) => out,
        RunOutcome::Crashed => unreachable!("clean run has no fault plan"),
    };

    println!("faulty run (seeded bit flips) ...");
    let mut faulty =
        PipelineExecutor::new(&ctx, &keys, config("faulty"))?.with_bootstrapper(&booter);
    faulty.set_fault_plan(FaultPlan::new(0xFA017, 0.25));
    let recovered = match faulty.run(&ct, &program)? {
        RunOutcome::Completed(out) => out,
        RunOutcome::Crashed => unreachable!("this plan has no kill points"),
    };
    let t = faulty.telemetry();
    println!(
        "telemetry: {} injected, {} detected, {} retries, {} restores, \
         {} checkpoints ({} bytes)",
        t.faults_injected,
        t.faults_detected,
        t.retries,
        t.restores,
        t.checkpoints_written,
        t.bytes_written
    );

    let _ = std::fs::remove_dir_all(&dir);
    assert!(t.faults_injected >= 1, "plan never fired — smoke is vacuous");
    assert!(t.retries >= 1, "no recovery was recorded");
    assert!(
        t.faults_detected >= t.faults_injected,
        "some injected faults went undetected"
    );
    assert_eq!(
        recovered, expected,
        "recovered output differs from the clean run"
    );
    println!("fault recovery smoke: OK (recovered output is bit-identical)");
    Ok(())
}
